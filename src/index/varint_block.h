#ifndef NDSS_INDEX_VARINT_BLOCK_H_
#define NDSS_INDEX_VARINT_BLOCK_H_

#include <algorithm>
#include <cstdint>

#include "common/coding.h"
#include "index/posting.h"

namespace ndss {

/// Upper bound on the encoded size of one posting window: four varints
/// (text delta, l, c - l, r - c), each at most kMaxVarint32Bytes.
inline constexpr size_t kWindowMaxEncodedBytes = 4 * kMaxVarint32Bytes;

/// Decodes one compressed posting run — up to `max_windows` windows from
/// [p, limit) into `out` (which must hold max_windows slots). Window 0 of
/// the run carries an absolute text id (a restart point); later windows
/// delta-encode it. Per-window fields are (text field, l, c - l, r - c).
///
/// The hot loop decodes in chunks sized so that every varint of the chunk
/// is provably in bounds — one range check per chunk instead of four per
/// window — using the unrolled GetVarint32Unchecked; the last few windows
/// near `limit` fall back to the bounds-checked decoder. Output and failure
/// behavior are bit-identical to the one-varint-at-a-time reference
/// (reference::DecodeWindowRun): sets `*decoded` to the number of complete
/// windows and returns the position after the last one (which is `limit`
/// when the buffer runs out exactly at a window boundary), or returns
/// nullptr on a truncated or overlong varint.
inline const char* DecodeWindowRun(const char* p, const char* limit,
                                   uint64_t max_windows, PostedWindow* out,
                                   uint64_t* decoded) {
  uint32_t prev_text = 0;
  uint64_t n = 0;
  while (n < max_windows && p < limit) {
    const uint64_t chunk =
        std::min<uint64_t>(max_windows - n,
                           static_cast<uint64_t>(limit - p) /
                               kWindowMaxEncodedBytes);
    if (chunk == 0) {
      // Tail: fewer than kWindowMaxEncodedBytes remain, so this window may
      // straddle the end of the buffer — decode it checked.
      uint32_t text_field, l, c_delta, r_delta;
      const char* q = GetVarint32(p, limit, &text_field);
      if (q != nullptr) q = GetVarint32(q, limit, &l);
      if (q != nullptr) q = GetVarint32(q, limit, &c_delta);
      if (q != nullptr) q = GetVarint32(q, limit, &r_delta);
      if (q == nullptr) return nullptr;
      p = q;
      const uint32_t text = n == 0 ? text_field : prev_text + text_field;
      prev_text = text;
      out[n++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
      continue;
    }
    for (uint64_t i = 0; i < chunk; ++i) {
#if defined(__GNUC__) || defined(__clang__)
      // Pull upcoming encoded bytes into cache while this window decodes
      // (prefetching past `limit` is safe — prefetches never fault).
      __builtin_prefetch(p + 256);
#endif
      uint32_t text_field, l, c_delta, r_delta;
      p = GetVarint32Unchecked(p, &text_field);
      if (p != nullptr) p = GetVarint32Unchecked(p, &l);
      if (p != nullptr) p = GetVarint32Unchecked(p, &c_delta);
      if (p != nullptr) p = GetVarint32Unchecked(p, &r_delta);
      if (p == nullptr) return nullptr;  // overlong varint
      const uint32_t text = n == 0 ? text_field : prev_text + text_field;
      prev_text = text;
      out[n++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
    }
  }
  *decoded = n;
  return p;
}

}  // namespace ndss

#endif  // NDSS_INDEX_VARINT_BLOCK_H_
