#ifndef NDSS_INDEX_INVERTED_INDEX_READER_H_
#define NDSS_INDEX_INVERTED_INDEX_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"
#include "index/index_format.h"
#include "index/list_source.h"
#include "index/posting.h"

namespace ndss {

/// Reads one inverted-index file written by InvertedIndexWriter (raw or
/// compressed posting format; the format is self-described in the header).
///
/// The directory is held in memory (one entry per distinct min-hash key, at
/// most vocabulary-sized); list and zone reads hit the disk through
/// positional pread-style IO, so any number of threads may read lists
/// concurrently. The `bytes_read()` counter is the IO-cost metric the
/// experiments report.
class InvertedIndexReader : public InvertedListSource {
 public:
  static Result<InvertedIndexReader> Open(const std::string& path);

  InvertedIndexReader(InvertedIndexReader&&) noexcept = default;
  InvertedIndexReader& operator=(InvertedIndexReader&&) noexcept = default;

  using InvertedListSource::ReadList;
  using InvertedListSource::ReadWindowsForText;

  /// Directory entry for `key`, or nullptr if the key has no list.
  const ListMeta* FindList(Token key) const override;

  /// Reads an entire list into `out` (appending). With a `ctx`, the decode
  /// loop checks the deadline/cancellation at bounded granularity and the
  /// compressed path charges its scratch buffer to the memory budget.
  Status ReadList(const ListMeta& meta, std::vector<PostedWindow>* out,
                  uint64_t* io_bytes, const QueryContext* ctx) override;

  /// Reads only the windows of text `text` from the list (appending),
  /// using the zone map to avoid scanning the whole list when one exists
  /// (the paper's point-lookup path for long lists, Section 3.5). Partial
  /// reads that cannot verify the full list checksum validate structural
  /// invariants of every window instead (and verify the checksum whenever
  /// the probe does cover the whole list).
  Status ReadWindowsForText(const ListMeta& meta, TextId text,
                            std::vector<PostedWindow>* out,
                            uint64_t* io_bytes,
                            const QueryContext* ctx) override;

  /// Hash function id this file was written for.
  uint32_t func() const { return func_; }

  /// Posting-list encoding of this file.
  index_format::PostingFormat format() const { return format_; }

  /// Number of lists in the file.
  size_t num_lists() const { return directory_.size(); }

  /// Total windows in the file.
  uint64_t num_windows() const { return num_windows_; }

  /// All directory entries, sorted by key (for stats / prefix-length
  /// selection experiments).
  const std::vector<ListMeta>& directory() const override {
    return directory_;
  }

  /// Total bytes physically read so far.
  uint64_t bytes_read() const override { return reader_.bytes_read(); }

 private:
  InvertedIndexReader(FileReader reader, uint32_t func, uint32_t zone_step,
                      index_format::PostingFormat format);

  /// Decodes `max_windows` windows of a compressed run starting at a
  /// restart point. Stops early if the buffer is exhausted.
  Status DecodeRun(const char* p, const char* limit, uint64_t max_windows,
                   std::vector<PostedWindow>* out) const;

  FileReader reader_;
  uint32_t func_ = 0;
  uint32_t zone_step_ = 64;
  index_format::PostingFormat format_ = index_format::kFormatRaw;
  uint64_t num_windows_ = 0;
  std::vector<ListMeta> directory_;
};

}  // namespace ndss

#endif  // NDSS_INDEX_INVERTED_INDEX_READER_H_
