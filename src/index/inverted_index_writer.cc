#include "index/inverted_index_writer.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace ndss {

namespace idx = index_format;

InvertedIndexWriter::InvertedIndexWriter(FileWriter writer, uint32_t zone_step,
                                         uint32_t zone_threshold,
                                         idx::PostingFormat format)
    : writer_(std::move(writer)),
      zone_step_(zone_step),
      zone_threshold_(zone_threshold),
      format_(format) {}

Result<InvertedIndexWriter> InvertedIndexWriter::Create(
    const std::string& path, uint32_t func, uint32_t zone_step,
    uint32_t zone_threshold, idx::PostingFormat format) {
  if (zone_step == 0) {
    return Status::InvalidArgument("zone_step must be positive");
  }
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path));
  NDSS_RETURN_NOT_OK(writer.AppendU64(idx::kIndexMagic));
  NDSS_RETURN_NOT_OK(writer.AppendU32(func));
  NDSS_RETURN_NOT_OK(writer.AppendU32(zone_step));
  NDSS_RETURN_NOT_OK(writer.AppendU32(zone_threshold));
  NDSS_RETURN_NOT_OK(writer.AppendU32(static_cast<uint32_t>(format)));
  return InvertedIndexWriter(std::move(writer), zone_step, zone_threshold,
                             format);
}

Status InvertedIndexWriter::FlushCurrentList() {
  if (!list_open_) return Status::OK();
  DirectoryEntry entry;
  entry.key = current_key_;
  entry.count = current_count_;
  entry.list_offset = current_offset_;
  entry.list_bytes = writer_.bytes_written() - current_offset_;
  if (format_ == idx::kFormatCompressed &&
      entry.list_bytes > 0xffffffffULL) {
    return Status::ResourceExhausted(
        "compressed list exceeds 4 GiB; raise zone_step or use raw format");
  }
  if (current_count_ >= zone_threshold_) {
    entry.zone_first = zone_entries_.size();
    entry.zone_count = static_cast<uint32_t>(current_zones_.size());
    zone_entries_.insert(zone_entries_.end(), current_zones_.begin(),
                         current_zones_.end());
  } else {
    entry.zone_first = 0;
    entry.zone_count = 0;
  }
  directory_.push_back(entry);
  list_open_ = false;
  current_zones_.clear();
  return Status::OK();
}

Status InvertedIndexWriter::BeginList(Token key) {
  if (finished_) return Status::Internal("writer already finished");
  NDSS_RETURN_NOT_OK(FlushCurrentList());
  list_open_ = true;
  current_key_ = key;
  current_count_ = 0;
  current_offset_ = writer_.bytes_written();
  prev_text_ = 0;
  return Status::OK();
}

Status InvertedIndexWriter::AddWindow(const PostedWindow& window) {
  return AddWindows(&window, 1);
}

Status InvertedIndexWriter::AddWindows(const PostedWindow* windows,
                                       size_t count) {
  if (!list_open_) return Status::Internal("no open list");
  if (format_ == idx::kFormatRaw) {
    for (size_t i = 0; i < count; ++i) {
      if (current_count_ % zone_step_ == 0) {
        current_zones_.push_back(
            {windows[i].text, static_cast<uint32_t>(current_count_)});
      }
      ++current_count_;
    }
    NDSS_RETURN_NOT_OK(writer_.Append(windows, count * sizeof(PostedWindow)));
  } else {
    encode_buffer_.clear();
    const uint64_t base = writer_.bytes_written() - current_offset_;
    for (size_t i = 0; i < count; ++i) {
      const PostedWindow& w = windows[i];
      NDSS_CHECK(w.l <= w.c && w.c <= w.r) << "malformed window";
      const bool restart = current_count_ % zone_step_ == 0;
      if (restart) {
        // Restart point: absolute text id; decoding can begin here.
        current_zones_.push_back(
            {w.text, static_cast<uint32_t>(base + encode_buffer_.size())});
        PutVarint32(&encode_buffer_, w.text);
      } else {
        NDSS_CHECK(w.text >= prev_text_) << "list not sorted by text";
        PutVarint32(&encode_buffer_, w.text - prev_text_);
      }
      PutVarint32(&encode_buffer_, w.l);
      PutVarint32(&encode_buffer_, w.c - w.l);
      PutVarint32(&encode_buffer_, w.r - w.c);
      prev_text_ = w.text;
      ++current_count_;
    }
    NDSS_RETURN_NOT_OK(writer_.Append(encode_buffer_));
  }
  num_windows_ += count;
  return Status::OK();
}

Status InvertedIndexWriter::WriteSorted(const KeyedWindow* windows,
                                        size_t count) {
  size_t i = 0;
  std::vector<PostedWindow> run;
  while (i < count) {
    const Token key = windows[i].key;
    size_t j = i;
    run.clear();
    while (j < count && windows[j].key == key) {
      run.push_back(windows[j].ToPosted());
      ++j;
    }
    NDSS_RETURN_NOT_OK(BeginList(key));
    NDSS_RETURN_NOT_OK(AddWindows(run.data(), run.size()));
    i = j;
  }
  return Status::OK();
}

Status InvertedIndexWriter::Finish() {
  if (finished_) return Status::OK();
  NDSS_RETURN_NOT_OK(FlushCurrentList());
  finished_ = true;
  // Lists may be appended in any key order (the out-of-core builder emits
  // hash partitions); the directory is sorted here so the reader can binary
  // search. Keys must still be distinct across lists.
  std::sort(directory_.begin(), directory_.end(),
            [](const DirectoryEntry& a, const DirectoryEntry& b) {
              return a.key < b.key;
            });
  for (size_t i = 1; i < directory_.size(); ++i) {
    if (directory_[i].key == directory_[i - 1].key) {
      return Status::InvalidArgument(
          "duplicate inverted-list key " + std::to_string(directory_[i].key));
    }
  }
  // Zone section.
  const uint64_t zone_section_offset = writer_.bytes_written();
  for (const auto& [text, position] : zone_entries_) {
    NDSS_RETURN_NOT_OK(writer_.AppendU32(text));
    NDSS_RETURN_NOT_OK(writer_.AppendU32(position));
  }
  // Directory.
  const uint64_t directory_offset = writer_.bytes_written();
  for (const DirectoryEntry& entry : directory_) {
    NDSS_RETURN_NOT_OK(writer_.AppendU32(entry.key));
    NDSS_RETURN_NOT_OK(writer_.AppendU32(0));  // pad
    NDSS_RETURN_NOT_OK(writer_.AppendU64(entry.count));
    NDSS_RETURN_NOT_OK(writer_.AppendU64(entry.list_offset));
    NDSS_RETURN_NOT_OK(writer_.AppendU64(entry.list_bytes));
    const uint64_t zone_offset =
        entry.zone_count == 0
            ? 0
            : zone_section_offset + entry.zone_first * idx::kZoneEntrySize;
    NDSS_RETURN_NOT_OK(writer_.AppendU64(zone_offset));
    NDSS_RETURN_NOT_OK(writer_.AppendU32(entry.zone_count));
    NDSS_RETURN_NOT_OK(writer_.AppendU32(0));  // pad
  }
  // Footer.
  NDSS_RETURN_NOT_OK(writer_.AppendU64(directory_.size()));
  NDSS_RETURN_NOT_OK(writer_.AppendU64(num_windows_));
  NDSS_RETURN_NOT_OK(writer_.AppendU64(directory_offset));
  NDSS_RETURN_NOT_OK(writer_.AppendU64(idx::kIndexMagic));
  return writer_.Close();
}

}  // namespace ndss
