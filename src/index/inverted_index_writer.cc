#include "index/inverted_index_writer.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace ndss {

namespace idx = index_format;

InvertedIndexWriter::InvertedIndexWriter(FileWriter writer,
                                         std::string final_path,
                                         std::string header_bytes,
                                         uint32_t zone_step,
                                         uint32_t zone_threshold,
                                         idx::PostingFormat format)
    : writer_(std::move(writer)),
      final_path_(std::move(final_path)),
      header_bytes_(std::move(header_bytes)),
      zone_step_(zone_step),
      zone_threshold_(zone_threshold),
      format_(format) {}

Result<InvertedIndexWriter> InvertedIndexWriter::Create(
    const std::string& path, uint32_t func, uint32_t zone_step,
    uint32_t zone_threshold, idx::PostingFormat format) {
  if (zone_step == 0) {
    return Status::InvalidArgument("zone_step must be positive");
  }
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path + ".tmp"));
  std::string header;
  PutFixed64(&header, idx::kIndexMagic);
  PutFixed32(&header, func);
  PutFixed32(&header, zone_step);
  PutFixed32(&header, zone_threshold);
  PutFixed32(&header, static_cast<uint32_t>(format));
  NDSS_RETURN_NOT_OK(writer.Append(header));
  return InvertedIndexWriter(std::move(writer), path, std::move(header),
                             zone_step, zone_threshold, format);
}

Status InvertedIndexWriter::FlushCurrentList() {
  if (!list_open_) return Status::OK();
  DirectoryEntry entry;
  entry.key = current_key_;
  entry.count = current_count_;
  entry.list_offset = current_offset_;
  entry.list_bytes = writer_.bytes_written() - current_offset_;
  entry.list_crc = crc32c::Mask(current_crc_);
  if (format_ == idx::kFormatCompressed &&
      entry.list_bytes > 0xffffffffULL) {
    return Status::ResourceExhausted(
        "compressed list exceeds 4 GiB; raise zone_step or use raw format");
  }
  if (current_count_ >= zone_threshold_) {
    entry.zone_first = zone_entries_.size();
    entry.zone_count = static_cast<uint32_t>(current_zones_.size());
    zone_entries_.insert(zone_entries_.end(), current_zones_.begin(),
                         current_zones_.end());
  } else {
    entry.zone_first = 0;
    entry.zone_count = 0;
  }
  directory_.push_back(entry);
  list_open_ = false;
  current_zones_.clear();
  return Status::OK();
}

Status InvertedIndexWriter::BeginList(Token key) {
  if (finished_) return Status::Internal("writer already finished");
  NDSS_RETURN_NOT_OK(FlushCurrentList());
  list_open_ = true;
  current_key_ = key;
  current_count_ = 0;
  current_offset_ = writer_.bytes_written();
  current_crc_ = 0;
  prev_text_ = 0;
  return Status::OK();
}

Status InvertedIndexWriter::AddWindow(const PostedWindow& window) {
  return AddWindows(&window, 1);
}

Status InvertedIndexWriter::AddWindows(const PostedWindow* windows,
                                       size_t count) {
  if (!list_open_) return Status::Internal("no open list");
  if (format_ == idx::kFormatRaw) {
    for (size_t i = 0; i < count; ++i) {
      if (current_count_ % zone_step_ == 0) {
        current_zones_.push_back(
            {windows[i].text, static_cast<uint32_t>(current_count_)});
      }
      ++current_count_;
    }
    NDSS_RETURN_NOT_OK(writer_.Append(windows, count * sizeof(PostedWindow)));
    current_crc_ =
        crc32c::Extend(current_crc_, windows, count * sizeof(PostedWindow));
  } else {
    encode_buffer_.clear();
    const uint64_t base = writer_.bytes_written() - current_offset_;
    for (size_t i = 0; i < count; ++i) {
      const PostedWindow& w = windows[i];
      NDSS_CHECK(w.l <= w.c && w.c <= w.r) << "malformed window";
      const bool restart = current_count_ % zone_step_ == 0;
      if (restart) {
        // Restart point: absolute text id; decoding can begin here.
        current_zones_.push_back(
            {w.text, static_cast<uint32_t>(base + encode_buffer_.size())});
        PutVarint32(&encode_buffer_, w.text);
      } else {
        NDSS_CHECK(w.text >= prev_text_) << "list not sorted by text";
        PutVarint32(&encode_buffer_, w.text - prev_text_);
      }
      PutVarint32(&encode_buffer_, w.l);
      PutVarint32(&encode_buffer_, w.c - w.l);
      PutVarint32(&encode_buffer_, w.r - w.c);
      prev_text_ = w.text;
      ++current_count_;
    }
    NDSS_RETURN_NOT_OK(writer_.Append(encode_buffer_));
    current_crc_ = crc32c::Extend(current_crc_, encode_buffer_.data(),
                                  encode_buffer_.size());
  }
  num_windows_ += count;
  return Status::OK();
}

Status InvertedIndexWriter::WriteSorted(const KeyedWindow* windows,
                                        size_t count) {
  size_t i = 0;
  std::vector<PostedWindow> run;
  while (i < count) {
    const Token key = windows[i].key;
    size_t j = i;
    run.clear();
    while (j < count && windows[j].key == key) {
      run.push_back(windows[j].ToPosted());
      ++j;
    }
    NDSS_RETURN_NOT_OK(BeginList(key));
    NDSS_RETURN_NOT_OK(AddWindows(run.data(), run.size()));
    i = j;
  }
  return Status::OK();
}

Status InvertedIndexWriter::Finish() {
  if (finished_) return Status::OK();
  NDSS_RETURN_NOT_OK(FlushCurrentList());
  finished_ = true;
  // Lists may be appended in any key order (the out-of-core builder emits
  // hash partitions); the directory is sorted here so the reader can binary
  // search. Keys must still be distinct across lists.
  std::sort(directory_.begin(), directory_.end(),
            [](const DirectoryEntry& a, const DirectoryEntry& b) {
              return a.key < b.key;
            });
  for (size_t i = 1; i < directory_.size(); ++i) {
    if (directory_[i].key == directory_[i - 1].key) {
      return Status::InvalidArgument(
          "duplicate inverted-list key " + std::to_string(directory_[i].key));
    }
  }
  // Zone section. Zone CRCs are computed per list over its serialized
  // entries, keyed by zone_first (entries were appended in list order, which
  // the directory sort above may have permuted).
  const uint64_t zone_section_offset = writer_.bytes_written();
  std::string zone_bytes;
  zone_bytes.reserve(zone_entries_.size() * idx::kZoneEntrySize);
  for (const auto& [text, position] : zone_entries_) {
    PutFixed32(&zone_bytes, text);
    PutFixed32(&zone_bytes, position);
  }
  NDSS_RETURN_NOT_OK(writer_.Append(zone_bytes));
  // Directory.
  const uint64_t directory_offset = writer_.bytes_written();
  std::string directory_bytes;
  directory_bytes.reserve(directory_.size() * idx::kDirectoryEntrySize);
  for (const DirectoryEntry& entry : directory_) {
    uint32_t zone_crc = 0;
    uint64_t zone_offset = 0;
    if (entry.zone_count > 0) {
      zone_offset =
          zone_section_offset + entry.zone_first * idx::kZoneEntrySize;
      zone_crc = crc32c::Mask(crc32c::Value(
          zone_bytes.data() + entry.zone_first * idx::kZoneEntrySize,
          entry.zone_count * idx::kZoneEntrySize));
    }
    PutFixed32(&directory_bytes, entry.key);
    PutFixed32(&directory_bytes, entry.list_crc);
    PutFixed64(&directory_bytes, entry.count);
    PutFixed64(&directory_bytes, entry.list_offset);
    PutFixed64(&directory_bytes, entry.list_bytes);
    PutFixed64(&directory_bytes, zone_offset);
    PutFixed32(&directory_bytes, entry.zone_count);
    PutFixed32(&directory_bytes, zone_crc);
  }
  NDSS_RETURN_NOT_OK(writer_.Append(directory_bytes));
  // Footer: the checksum covers the header, the directory, and the footer's
  // own prefix, so a flipped bit in any metadata region fails the open.
  std::string footer;
  PutFixed64(&footer, directory_.size());
  PutFixed64(&footer, num_windows_);
  PutFixed64(&footer, directory_offset);
  uint32_t crc = crc32c::Value(header_bytes_.data(), header_bytes_.size());
  crc = crc32c::Extend(crc, directory_bytes.data(), directory_bytes.size());
  crc = crc32c::Extend(crc, footer.data(), footer.size());
  PutFixed32(&footer, crc32c::Mask(crc));
  PutFixed32(&footer, 0);  // pad
  PutFixed64(&footer, idx::kIndexMagic);
  NDSS_RETURN_NOT_OK(writer_.Append(footer));
  // Publish: fsync the temp file, then atomically rename onto the final
  // path. A crash before the rename leaves only the temp file, which open
  // never considers.
  NDSS_RETURN_NOT_OK(writer_.Sync());
  NDSS_RETURN_NOT_OK(writer_.Close());
  return RenameFile(final_path_ + ".tmp", final_path_);
}

}  // namespace ndss
