#include "index/inverted_index_reader.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/query_context.h"
#include "index/varint_block.h"

namespace ndss {

namespace idx = index_format;

InvertedIndexReader::InvertedIndexReader(FileReader reader, uint32_t func,
                                         uint32_t zone_step,
                                         idx::PostingFormat format)
    : reader_(std::move(reader)),
      func_(func),
      zone_step_(zone_step),
      format_(format) {}

Result<InvertedIndexReader> InvertedIndexReader::Open(
    const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
  if (reader.size() < idx::kHeaderSize + idx::kFooterSize) {
    return Status::Corruption("inverted index too small: " + path);
  }
  // Header (read raw — the bytes participate in the footer checksum).
  char header[idx::kHeaderSize];
  NDSS_RETURN_NOT_OK(reader.ReadAt(0, header, sizeof(header)));
  const uint64_t magic = DecodeFixed64(header);
  if (magic == idx::kIndexMagicV1) {
    return Status::InvalidArgument(
        "index file is format v1 (no checksums): " + path +
        "; rebuild the index with this version");
  }
  if (magic != idx::kIndexMagic) {
    return Status::Corruption("bad index header magic: " + path);
  }
  const uint32_t func = DecodeFixed32(header + 8);
  const uint32_t zone_step = DecodeFixed32(header + 12);
  const uint32_t format_raw = DecodeFixed32(header + 20);
  if (format_raw > idx::kFormatCompressed) {
    return Status::Corruption("unknown posting format in " + path);
  }
  if (zone_step == 0) {
    // The writer always rejects a zero zone step; a zero here is header
    // corruption, and both the run decoder and the zone probe's batching
    // divide by it.
    return Status::Corruption("zero zone step in index header: " + path);
  }
  // Footer.
  char footer[idx::kFooterSize];
  NDSS_RETURN_NOT_OK(
      reader.ReadAt(reader.size() - idx::kFooterSize, footer, sizeof(footer)));
  const uint64_t num_lists = DecodeFixed64(footer);
  const uint64_t num_windows = DecodeFixed64(footer + 8);
  const uint64_t directory_offset = DecodeFixed64(footer + 16);
  const uint32_t stored_checksum = DecodeFixed32(footer + 24);
  const uint64_t footer_magic = DecodeFixed64(footer + 32);
  if (footer_magic != idx::kIndexMagic) {
    return Status::Corruption("bad index footer magic: " + path);
  }
  if (directory_offset + num_lists * idx::kDirectoryEntrySize +
          idx::kFooterSize !=
      reader.size()) {
    return Status::Corruption("index directory size mismatch: " + path);
  }
  InvertedIndexReader result(std::move(reader), func, zone_step,
                             static_cast<idx::PostingFormat>(format_raw));
  result.num_windows_ = num_windows;
  // Directory, verified against the footer checksum (which covers header ++
  // directory ++ the footer's first 24 bytes).
  std::vector<char> raw(num_lists * idx::kDirectoryEntrySize);
  if (!raw.empty()) {
    NDSS_RETURN_NOT_OK(
        result.reader_.ReadAt(directory_offset, raw.data(), raw.size()));
  }
  uint32_t crc = crc32c::Value(header, sizeof(header));
  crc = crc32c::Extend(crc, raw.data(), raw.size());
  crc = crc32c::Extend(crc, footer, 24);
  if (crc != crc32c::Unmask(stored_checksum)) {
    return Status::Corruption("index metadata checksum mismatch: " + path);
  }
  result.directory_.resize(num_lists);
  for (uint64_t i = 0; i < num_lists; ++i) {
    const char* p = raw.data() + i * idx::kDirectoryEntrySize;
    ListMeta& meta = result.directory_[i];
    meta.key = DecodeFixed32(p);
    meta.list_crc = DecodeFixed32(p + 4);
    meta.count = DecodeFixed64(p + 8);
    meta.list_offset = DecodeFixed64(p + 16);
    meta.list_bytes = DecodeFixed64(p + 24);
    meta.zone_offset = DecodeFixed64(p + 32);
    meta.zone_count = DecodeFixed32(p + 40);
    meta.zone_crc = DecodeFixed32(p + 44);
  }
  return result;
}

const ListMeta* InvertedIndexReader::FindList(Token key) const {
  auto it = std::lower_bound(
      directory_.begin(), directory_.end(), key,
      [](const ListMeta& meta, Token k) { return meta.key < k; });
  if (it == directory_.end() || it->key != key) return nullptr;
  return &*it;
}

Status InvertedIndexReader::DecodeRun(const char* p, const char* limit,
                                      uint64_t max_windows,
                                      std::vector<PostedWindow>* out) const {
  // Block decode straight into the output (window 0 of the run is a restart
  // point with an absolute text id). The buffer may cleanly hold fewer than
  // max_windows windows; only a varint cut off mid-byte is corruption.
  const size_t old_size = out->size();
  out->resize(old_size + max_windows);
  uint64_t decoded = 0;
  const char* q =
      DecodeWindowRun(p, limit, max_windows, out->data() + old_size, &decoded);
  if (q == nullptr) {
    out->resize(old_size);
    return Status::Corruption("truncated varint in compressed list");
  }
  out->resize(old_size + decoded);
  return Status::OK();
}

Status InvertedIndexReader::ReadList(const ListMeta& meta,
                                     std::vector<PostedWindow>* out,
                                     uint64_t* io_bytes,
                                     const QueryContext* ctx) {
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  if (format_ == idx::kFormatRaw) {
    if (meta.list_bytes != meta.count * sizeof(PostedWindow)) {
      return Status::Corruption("raw list size mismatch");
    }
    const size_t old_size = out->size();
    out->resize(old_size + meta.count);
    NDSS_RETURN_NOT_OK(reader_.ReadAt(meta.list_offset, out->data() + old_size,
                                      meta.count * sizeof(PostedWindow)));
    if (io_bytes != nullptr) *io_bytes += meta.count * sizeof(PostedWindow);
    const uint32_t actual = crc32c::Value(out->data() + old_size,
                                          meta.count * sizeof(PostedWindow));
    if (actual != crc32c::Unmask(meta.list_crc)) {
      out->resize(old_size);
      return Status::Corruption("list checksum mismatch for key " +
                                std::to_string(meta.key));
    }
    return Status::OK();
  }
  // Compressed: read the encoded bytes and decode run by run (restart
  // points every zone_step_ windows). The encoded scratch buffer is charged
  // to the query's budget for its lifetime (the decoded windows are charged
  // by the caller, which knows where they end up).
  ScopedMemoryCharge scratch(ctx);
  NDSS_RETURN_NOT_OK(scratch.Charge(meta.list_bytes));
  std::vector<char> buffer(meta.list_bytes);
  if (!buffer.empty()) {
    NDSS_RETURN_NOT_OK(
        reader_.ReadAt(meta.list_offset, buffer.data(), buffer.size()));
  }
  if (io_bytes != nullptr) *io_bytes += buffer.size();
  if (crc32c::Value(buffer.data(), buffer.size()) !=
      crc32c::Unmask(meta.list_crc)) {
    return Status::Corruption("list checksum mismatch for key " +
                              std::to_string(meta.key));
  }
  const char* limit = buffer.data() + buffer.size();
  // One sequential pass, decoded a run (zone_step_ windows, delta base
  // reset at each restart point) at a time straight into preallocated
  // output — block decode does one bounds check per chunk instead of four
  // per window. A checksum-verified list must decode completely, so a short
  // run is corruption (a CRC collision or a reader bug) even though the
  // buffer ended cleanly.
  const size_t old_size = out->size();
  out->resize(old_size + meta.count);
  const char* q = buffer.data();
  uint64_t i = 0;
  uint64_t since_check = 0;
  while (i < meta.count) {
    const uint64_t run = std::min<uint64_t>(zone_step_, meta.count - i);
    uint64_t decoded = 0;
    q = DecodeWindowRun(q, limit, run, out->data() + old_size + i, &decoded);
    if (q == nullptr || decoded != run) {
      out->resize(old_size);
      return Status::Corruption("truncated varint in compressed list");
    }
    i += run;
    since_check += run;
    if (since_check >= QueryContext::kCheckIntervalWindows) {
      since_check = 0;
      const Status checkpoint = CheckQueryContext(ctx);
      if (!checkpoint.ok()) {
        out->resize(old_size);
        return checkpoint;
      }
    }
  }
  return Status::OK();
}

namespace {

/// Structural validation of one window against its in-list predecessor.
/// Lists always satisfy l <= c <= r per window and non-decreasing text ids
/// (the zone map depends on the latter); a probe that cannot afford the
/// full-list checksum rejects any window breaking those invariants instead
/// of handing corrupt positions to CollisionCount.
Status CheckWindowInvariants(const PostedWindow& w, bool has_prev,
                             TextId prev_text, Token key) {
  if (w.l > w.c || w.c > w.r) {
    return Status::Corruption("zone probe: invalid window bounds in list " +
                              std::to_string(key));
  }
  if (has_prev && w.text < prev_text) {
    return Status::Corruption("zone probe: windows out of order in list " +
                              std::to_string(key));
  }
  return Status::OK();
}

}  // namespace

Status InvertedIndexReader::ReadWindowsForText(const ListMeta& meta,
                                               TextId text,
                                               std::vector<PostedWindow>* out,
                                               uint64_t* io_bytes,
                                               const QueryContext* ctx) {
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  ScopedMemoryCharge scratch(ctx);
  if (meta.zone_count == 0) {
    // Short list: read fully and filter. The full decoded list is scratch
    // here — only the filtered windows survive into `out`.
    NDSS_RETURN_NOT_OK(scratch.Charge(meta.count * sizeof(PostedWindow)));
    std::vector<PostedWindow> all;
    all.reserve(meta.count);
    NDSS_RETURN_NOT_OK(ReadList(meta, &all, io_bytes, ctx));
    for (const PostedWindow& window : all) {
      if (window.text == text) out->push_back(window);
    }
    return Status::OK();
  }
  // Zone map: locate the first segment that can contain `text`. The zone
  // region has its own CRC (partial list reads below can't always verify
  // the full list checksum).
  NDSS_RETURN_NOT_OK(scratch.Charge(meta.zone_count * idx::kZoneEntrySize));
  std::vector<char> zones(meta.zone_count * idx::kZoneEntrySize);
  NDSS_RETURN_NOT_OK(
      reader_.ReadAt(meta.zone_offset, zones.data(), zones.size()));
  if (io_bytes != nullptr) *io_bytes += zones.size();
  if (crc32c::Value(zones.data(), zones.size()) !=
      crc32c::Unmask(meta.zone_crc)) {
    return Status::Corruption("zone map checksum mismatch for key " +
                              std::to_string(meta.key));
  }
  // Zone entries are (text, position) with non-decreasing text. Find the
  // first entry with entry.text >= text and start one segment earlier:
  // every window before that point has text strictly below the target.
  uint32_t lo = 0;
  uint32_t hi = meta.zone_count;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const TextId entry_text =
        DecodeFixed32(zones.data() + mid * idx::kZoneEntrySize);
    if (entry_text >= text) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  uint32_t segment = lo == 0 ? 0 : lo - 1;

  auto zone_position = [&zones](uint32_t index) {
    return DecodeFixed32(zones.data() + index * idx::kZoneEntrySize + 4);
  };

  if (format_ == idx::kFormatRaw) {
    if (meta.list_bytes != meta.count * sizeof(PostedWindow)) {
      return Status::Corruption("raw list size mismatch");
    }
    uint64_t index = zone_position(segment);
    // When the probe starts at the head of the list and runs to its end, it
    // has seen every byte and can verify the full-list checksum; a probe
    // that stops early falls back to the per-window invariant checks.
    const bool from_start = index == 0;
    uint32_t crc = 0;
    bool has_prev = false;
    TextId prev_text = 0;
    std::vector<PostedWindow> buffer;
    while (index < meta.count) {
      // One batch is at most zone_step_ windows — the probe's checkpoint
      // granularity.
      NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
      const size_t batch = std::min<uint64_t>(zone_step_, meta.count - index);
      buffer.resize(batch);
      NDSS_RETURN_NOT_OK(
          reader_.ReadAt(meta.list_offset + index * sizeof(PostedWindow),
                         buffer.data(), batch * sizeof(PostedWindow)));
      if (io_bytes != nullptr) *io_bytes += batch * sizeof(PostedWindow);
      if (from_start) {
        crc = crc32c::Extend(crc, buffer.data(), batch * sizeof(PostedWindow));
      }
      for (const PostedWindow& window : buffer) {
        NDSS_RETURN_NOT_OK(
            CheckWindowInvariants(window, has_prev, prev_text, meta.key));
        has_prev = true;
        prev_text = window.text;
        if (window.text == text) {
          out->push_back(window);
        } else if (window.text > text) {
          return Status::OK();
        }
      }
      index += batch;
    }
    if (from_start && crc != crc32c::Unmask(meta.list_crc)) {
      return Status::Corruption("list checksum mismatch for key " +
                                std::to_string(meta.key));
    }
    return Status::OK();
  }

  // Compressed: each zone entry is a restart point's byte offset. Decode
  // segment by segment until texts pass the target. As in the raw path, a
  // probe covering the whole list verifies the list checksum; otherwise the
  // per-window invariants are the corruption guard.
  const uint32_t first_segment = segment;
  uint32_t crc = 0;
  bool has_prev = false;
  TextId prev_text = 0;
  std::vector<char> buffer;
  std::vector<PostedWindow> decoded;
  for (; segment < meta.zone_count; ++segment) {
    // One segment is at most zone_step_ windows — the probe's checkpoint
    // granularity.
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    const uint64_t begin = zone_position(segment);
    const uint64_t end = segment + 1 < meta.zone_count
                             ? zone_position(segment + 1)
                             : meta.list_bytes;
    if (begin > end || end > meta.list_bytes) {
      return Status::Corruption("zone probe: bad restart offsets in list " +
                                std::to_string(meta.key));
    }
    const uint64_t windows_in_segment =
        std::min<uint64_t>(zone_step_,
                           meta.count - static_cast<uint64_t>(segment) *
                                            zone_step_);
    buffer.resize(end - begin);
    NDSS_RETURN_NOT_OK(
        reader_.ReadAt(meta.list_offset + begin, buffer.data(),
                       buffer.size()));
    if (io_bytes != nullptr) *io_bytes += buffer.size();
    if (first_segment == 0) {
      crc = crc32c::Extend(crc, buffer.data(), buffer.size());
    }
    decoded.clear();
    NDSS_RETURN_NOT_OK(DecodeRun(buffer.data(),
                                 buffer.data() + buffer.size(),
                                 windows_in_segment, &decoded));
    for (const PostedWindow& window : decoded) {
      NDSS_RETURN_NOT_OK(
          CheckWindowInvariants(window, has_prev, prev_text, meta.key));
      has_prev = true;
      prev_text = window.text;
      if (window.text == text) {
        out->push_back(window);
      } else if (window.text > text) {
        return Status::OK();
      }
    }
  }
  if (first_segment == 0 && crc != crc32c::Unmask(meta.list_crc)) {
    return Status::Corruption("list checksum mismatch for key " +
                              std::to_string(meta.key));
  }
  return Status::OK();
}

}  // namespace ndss
