#ifndef NDSS_CORPUSGEN_SYNTHETIC_H_
#define NDSS_CORPUSGEN_SYNTHETIC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Parameters of the synthetic tokenized corpus used by the experiments
/// (the offline stand-in for OpenWebText / the Pile; see DESIGN.md §4).
struct SyntheticCorpusOptions {
  /// Number of texts.
  uint32_t num_texts = 10000;

  /// Text lengths are uniform in [min_text_length, max_text_length].
  uint32_t min_text_length = 100;
  uint32_t max_text_length = 1000;

  /// Vocabulary size; tokens are drawn Zipf(s = zipf_exponent) so the token
  /// frequency skew of natural language (and hence the long-list behaviour
  /// the prefix filter targets) is reproduced.
  uint32_t vocab_size = 32000;
  double zipf_exponent = 1.0;

  /// Fraction of texts that contain a span copied from an earlier text
  /// ("near-duplicate planting"): web corpora are 30–45% near-duplicate.
  double plant_rate = 0.2;

  /// Planted span length is uniform in [min_plant_length, max_plant_length].
  uint32_t min_plant_length = 50;
  uint32_t max_plant_length = 200;

  /// Fraction of tokens of a planted span that are re-randomized, turning
  /// exact copies into near-duplicates.
  double plant_noise = 0.05;

  /// RNG seed; equal options produce byte-identical corpora.
  uint64_t seed = 42;
};

/// Ground truth for one planted near-duplicate span.
struct PlantedSpan {
  TextId source_text;
  uint32_t source_begin;  ///< first copied token position in the source
  TextId target_text;
  uint32_t target_begin;  ///< position of the copy in the target
  uint32_t length;
  uint32_t perturbed;  ///< how many tokens were re-randomized
};

/// A synthetic corpus plus the ground truth of its planted spans (used by
/// recall experiments: every planted span is a known near-duplicate pair).
struct SyntheticCorpus {
  Corpus corpus;
  std::vector<PlantedSpan> plants;
};

/// Generates a corpus per `options`.
SyntheticCorpus GenerateSyntheticCorpus(const SyntheticCorpusOptions& options);

/// Generates `num_sentences` of synthetic English-like raw text (Zipfian
/// word choice over a generated word list) — input for BPE training and the
/// vocabulary-size experiments of Figure 2.
std::string GenerateSyntheticEnglish(uint32_t num_sentences, uint64_t seed);

/// Takes a query sequence from a corpus text with optional perturbation:
/// copies `length` tokens starting at `begin` of `text` and re-randomizes a
/// `noise` fraction of them. Used to create queries with known answers.
std::vector<Token> PerturbSequence(std::span<const Token> text,
                                   uint32_t begin, uint32_t length,
                                   double noise, uint32_t vocab_size,
                                   Rng& rng);

/// A canary sequence planted into a corpus a controlled number of times —
/// the instrument for the duplication-vs-memorization experiment (prior
/// work: the chance a model emits a training sequence grows super-linearly
/// with its duplication count).
struct Canary {
  std::vector<Token> tokens;
  uint32_t duplication;  ///< how many texts contain a copy
};

/// A corpus with canaries planted at known duplication counts.
struct DuplicationCorpus {
  Corpus corpus;
  std::vector<Canary> canaries;
};

/// Generates a corpus per `base` (plant_rate is ignored) and plants
/// `canaries_per_factor` canaries of `canary_length` tokens for every
/// factor in `duplication_factors`: a canary with factor D is copied
/// verbatim into D distinct texts at random positions.
DuplicationCorpus GenerateDuplicationCorpus(
    const SyntheticCorpusOptions& base,
    const std::vector<uint32_t>& duplication_factors,
    uint32_t canaries_per_factor, uint32_t canary_length);

}  // namespace ndss

#endif  // NDSS_CORPUSGEN_SYNTHETIC_H_
