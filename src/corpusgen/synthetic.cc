#include "corpusgen/synthetic.h"

#include <algorithm>

#include "common/logging.h"
#include "corpusgen/zipf.h"

namespace ndss {

SyntheticCorpus GenerateSyntheticCorpus(
    const SyntheticCorpusOptions& options) {
  NDSS_CHECK(options.num_texts > 0);
  NDSS_CHECK(options.vocab_size > 0);
  NDSS_CHECK(options.min_text_length >= 1 &&
             options.min_text_length <= options.max_text_length);
  NDSS_CHECK(options.min_plant_length <= options.max_plant_length);

  Rng rng(options.seed);
  const ZipfSampler zipf(options.vocab_size, options.zipf_exponent);

  SyntheticCorpus result;
  result.corpus.Reserve(
      static_cast<size_t>(options.num_texts) *
          (options.min_text_length + options.max_text_length) / 2,
      options.num_texts);

  std::vector<Token> text;
  for (uint32_t id = 0; id < options.num_texts; ++id) {
    const uint32_t length =
        options.min_text_length +
        static_cast<uint32_t>(rng.Uniform(
            options.max_text_length - options.min_text_length + 1));
    text.resize(length);
    for (uint32_t i = 0; i < length; ++i) {
      text[i] = static_cast<Token>(zipf.Sample(rng));
    }
    // Optionally plant a (possibly perturbed) copy of a span from an
    // earlier text.
    if (id > 0 && rng.NextBool(options.plant_rate)) {
      const TextId source = static_cast<TextId>(rng.Uniform(id));
      const std::span<const Token> source_text = result.corpus.text(source);
      uint32_t plant_length = options.min_plant_length +
                              static_cast<uint32_t>(rng.Uniform(
                                  options.max_plant_length -
                                  options.min_plant_length + 1));
      plant_length = std::min<uint32_t>(
          plant_length,
          static_cast<uint32_t>(std::min<size_t>(source_text.size(), length)));
      if (plant_length >= 2) {
        const uint32_t source_begin = static_cast<uint32_t>(
            rng.Uniform(source_text.size() - plant_length + 1));
        const uint32_t target_begin =
            static_cast<uint32_t>(rng.Uniform(length - plant_length + 1));
        uint32_t perturbed = 0;
        for (uint32_t i = 0; i < plant_length; ++i) {
          if (rng.NextBool(options.plant_noise)) {
            text[target_begin + i] = static_cast<Token>(zipf.Sample(rng));
            ++perturbed;
          } else {
            text[target_begin + i] = source_text[source_begin + i];
          }
        }
        result.plants.push_back(PlantedSpan{source, source_begin, id,
                                            target_begin, plant_length,
                                            perturbed});
      }
    }
    result.corpus.AddText(text);
  }
  return result;
}

std::vector<Token> PerturbSequence(std::span<const Token> text,
                                   uint32_t begin, uint32_t length,
                                   double noise, uint32_t vocab_size,
                                   Rng& rng) {
  NDSS_CHECK(begin + length <= text.size());
  std::vector<Token> query(text.begin() + begin,
                           text.begin() + begin + length);
  for (Token& token : query) {
    if (rng.NextBool(noise)) {
      token = static_cast<Token>(rng.Uniform(vocab_size));
    }
  }
  return query;
}

DuplicationCorpus GenerateDuplicationCorpus(
    const SyntheticCorpusOptions& base,
    const std::vector<uint32_t>& duplication_factors,
    uint32_t canaries_per_factor, uint32_t canary_length) {
  NDSS_CHECK(canary_length >= 1);
  NDSS_CHECK(base.min_text_length >= canary_length)
      << "texts must be able to hold a canary";
  uint64_t copies_needed = 0;
  for (uint32_t factor : duplication_factors) {
    copies_needed += static_cast<uint64_t>(factor) * canaries_per_factor;
  }
  NDSS_CHECK(copies_needed <= base.num_texts)
      << "not enough texts to host every canary copy disjointly";

  Rng rng(base.seed);
  const ZipfSampler zipf(base.vocab_size, base.zipf_exponent);

  // Base texts.
  std::vector<std::vector<Token>> texts(base.num_texts);
  for (auto& text : texts) {
    const uint32_t length =
        base.min_text_length +
        static_cast<uint32_t>(rng.Uniform(base.max_text_length -
                                          base.min_text_length + 1));
    text.resize(length);
    for (auto& token : text) token = static_cast<Token>(zipf.Sample(rng));
  }

  // Plant canaries into disjoint host texts (a shuffled id sequence).
  std::vector<uint32_t> hosts(base.num_texts);
  for (uint32_t i = 0; i < base.num_texts; ++i) hosts[i] = i;
  for (uint32_t i = base.num_texts; i-- > 1;) {
    std::swap(hosts[i], hosts[rng.Uniform(i + 1)]);
  }
  DuplicationCorpus result;
  size_t next_host = 0;
  for (uint32_t factor : duplication_factors) {
    for (uint32_t c = 0; c < canaries_per_factor; ++c) {
      Canary canary;
      canary.duplication = factor;
      canary.tokens.resize(canary_length);
      for (auto& token : canary.tokens) {
        token = static_cast<Token>(zipf.Sample(rng));
      }
      for (uint32_t copy = 0; copy < factor; ++copy) {
        std::vector<Token>& host = texts[hosts[next_host++]];
        const uint32_t begin = static_cast<uint32_t>(
            rng.Uniform(host.size() - canary_length + 1));
        std::copy(canary.tokens.begin(), canary.tokens.end(),
                  host.begin() + begin);
      }
      result.canaries.push_back(std::move(canary));
    }
  }
  for (const auto& text : texts) result.corpus.AddText(text);
  return result;
}

namespace {

/// Builds a deterministic pseudo-English word list: word lengths 2–10,
/// letters weighted toward common English letter frequencies.
std::vector<std::string> MakeWordList(uint32_t num_words, Rng& rng) {
  static constexpr char kLetters[] = "etaoinshrdlcumwfgypbvkjxqz";
  std::vector<std::string> words;
  words.reserve(num_words);
  ZipfSampler letter_dist(26, 1.0);
  for (uint32_t w = 0; w < num_words; ++w) {
    const uint32_t length = 2 + static_cast<uint32_t>(rng.Uniform(9));
    std::string word;
    word.reserve(length);
    for (uint32_t i = 0; i < length; ++i) {
      word.push_back(kLetters[letter_dist.Sample(rng)]);
    }
    words.push_back(std::move(word));
  }
  return words;
}

}  // namespace

std::string GenerateSyntheticEnglish(uint32_t num_sentences, uint64_t seed) {
  Rng rng(seed);
  const uint32_t kVocabWords = 5000;
  const std::vector<std::string> words = MakeWordList(kVocabWords, rng);
  const ZipfSampler word_dist(kVocabWords, 1.05);
  std::string text;
  for (uint32_t s = 0; s < num_sentences; ++s) {
    const uint32_t sentence_words = 4 + static_cast<uint32_t>(rng.Uniform(16));
    for (uint32_t w = 0; w < sentence_words; ++w) {
      if (w > 0) text.push_back(' ');
      text += words[word_dist.Sample(rng)];
    }
    text += ". ";
  }
  return text;
}

}  // namespace ndss
