#ifndef NDSS_CORPUSGEN_ZIPF_H_
#define NDSS_CORPUSGEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ndss {

/// Samples item ranks from a Zipf distribution: P(rank = r) ∝ 1 / r^s for
/// ranks 1..n (returned 0-based). Natural-language token frequencies follow
/// Zipf's law (s ≈ 1), which is what makes a few inverted lists very long
/// and motivates the paper's prefix filtering.
///
/// Implementation: exact inverse-CDF sampling over a precomputed table
/// (O(n) memory, O(log n) per sample). Deterministic given the caller's Rng.
class ZipfSampler {
 public:
  /// Distribution over `n >= 1` items with exponent `s >= 0` (s = 0 is
  /// uniform).
  ZipfSampler(uint64_t n, double s);

  /// Draws one 0-based rank using `rng`.
  uint64_t Sample(Rng& rng) const;

  /// Probability of (0-based) rank `r`.
  double Probability(uint64_t r) const;

  uint64_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace ndss

#endif  // NDSS_CORPUSGEN_ZIPF_H_
