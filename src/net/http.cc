#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/parse.h"

namespace ndss {
namespace net {

namespace {

constexpr size_t kMaxHeadBytes = 64u << 10;  // request/status line + headers

/// recv() window used by server workers so blocked reads re-check the
/// server's stop flag at this granularity.
constexpr int kServerPollMs = 200;

/// Client-side cap on waiting for one response; searches can block for
/// their whole deadline, so this is generous.
constexpr int kClientRecvTimeoutMs = 120 * 1000;

void SetRecvTimeout(int fd, int millis) {
  timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetNoDelay(int fd) {
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// Splits the header block (everything before the blank line, which must
/// already be complete in `head`) into a first line and lower-cased
/// header map.
Status ParseHead(const std::string& head, std::string* first_line,
                 std::map<std::string, std::string>* headers) {
  size_t pos = head.find("\r\n");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("http: missing request line terminator");
  }
  *first_line = head.substr(0, pos);
  pos += 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("http: malformed header line");
    }
    (*headers)[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  return Status::OK();
}

/// Buffered reads from one socket. ReadMessage accumulates one full HTTP
/// message (head + Content-Length body); bytes past it stay buffered for
/// the next keep-alive request.
class MessageReader {
 public:
  MessageReader(int fd, size_t max_body_bytes)
      : fd_(fd), max_body_bytes_(max_body_bytes) {}

  /// Outcome of waiting for one message.
  enum class Outcome {
    kMessage,   ///< a complete head+body was parsed
    kClosed,    ///< peer closed with no partial message buffered
    kTimeout,   ///< one recv window elapsed with no new bytes
    kTooLarge,  ///< head or declared body over the limit
    kError,     ///< malformed message or socket error
  };

  /// Waits for one complete message. On kTimeout the caller decides
  /// whether to keep waiting (idle budget) and calls again; buffered
  /// partial data is preserved across calls.
  Outcome ReadMessage(std::string* first_line,
                      std::map<std::string, std::string>* headers,
                      std::string* body) {
    while (true) {
      const size_t head_end = buffer_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        return FinishMessage(head_end, first_line, headers, body);
      }
      if (buffer_.size() > kMaxHeadBytes) return Outcome::kTooLarge;
      const Outcome o = FillSome();
      if (o != Outcome::kMessage) return o;
    }
  }

  bool has_partial() const { return !buffer_.empty(); }

 private:
  /// Appends whatever recv returns; kMessage here just means "got bytes".
  Outcome FillSome() {
    char chunk[8192];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        return Outcome::kMessage;
      }
      if (n == 0) return Outcome::kClosed;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Outcome::kTimeout;
      return Outcome::kError;
    }
  }

  Outcome FinishMessage(size_t head_end, std::string* first_line,
                        std::map<std::string, std::string>* headers,
                        std::string* body) {
    headers->clear();
    if (!ParseHead(buffer_.substr(0, head_end + 2), first_line, headers)
             .ok()) {
      return Outcome::kError;
    }
    uint64_t content_length = 0;
    const auto it = headers->find("content-length");
    if (it != headers->end() &&
        !ParseUint64(it->second, &content_length)) {
      return Outcome::kError;
    }
    if (content_length > max_body_bytes_) return Outcome::kTooLarge;
    const size_t body_begin = head_end + 4;
    while (buffer_.size() - body_begin < content_length) {
      const Outcome o = FillSome();
      if (o != Outcome::kMessage) return o;
    }
    *body = buffer_.substr(body_begin, content_length);
    buffer_.erase(0, body_begin + content_length);
    return Outcome::kMessage;
  }

  const int fd_;
  const size_t max_body_bytes_;
  std::string buffer_;
};

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  bool have_type = false;
  for (const auto& [name, value] : response.headers) {
    if (ToLower(name) == "content-type") have_type = true;
    out += name + ": " + value + "\r\n";
  }
  if (!have_type && !response.body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 416:
      return "Range Not Satisfiable";
    case 429:
      return "Too Many Requests";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

Status HttpServer::Start(const HttpServerOptions& options,
                         HttpHandler handler) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  options_ = options;
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    const Status s =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status s =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  pool_ = std::make_unique<ThreadPool>(options.num_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblocks accept(); in-flight connection workers notice the flag at
  // their next recv window and drain.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // waits for outstanding connection tasks
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket shut down (or unrecoverable)
    }
    SetNoDelay(fd);
    SetRecvTimeout(fd, kServerPollMs);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  MessageReader reader(fd, options_.max_body_bytes);
  int idle_ms = 0;
  while (true) {
    std::string first_line;
    std::map<std::string, std::string> headers;
    std::string body;
    const MessageReader::Outcome outcome =
        reader.ReadMessage(&first_line, &headers, &body);
    if (outcome == MessageReader::Outcome::kTimeout) {
      idle_ms += kServerPollMs;
      const bool give_up =
          idle_ms >= options_.idle_timeout_ms ||
          (stopping_.load(std::memory_order_relaxed) && !reader.has_partial());
      if (give_up) break;
      continue;
    }
    if (outcome == MessageReader::Outcome::kTooLarge) {
      HttpResponse too_large;
      too_large.status = 413;
      too_large.body = "{\"error\":\"request too large\"}";
      SendAll(fd, SerializeResponse(too_large, /*keep_alive=*/false));
      break;
    }
    if (outcome != MessageReader::Outcome::kMessage) break;  // closed/error
    idle_ms = 0;

    HttpRequest request;
    request.headers = std::move(headers);
    request.body = std::move(body);
    {
      const size_t sp1 = first_line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : first_line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) {
        HttpResponse bad;
        bad.status = 400;
        bad.body = "{\"error\":\"malformed request line\"}";
        SendAll(fd, SerializeResponse(bad, /*keep_alive=*/false));
        break;
      }
      request.method = first_line.substr(0, sp1);
      request.target = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
    const std::string* connection = request.FindHeader("connection");
    const bool keep_alive =
        (connection == nullptr || ToLower(*connection) != "close") &&
        !stopping_.load(std::memory_order_relaxed);

    const HttpResponse response = handler_(request);
    if (!SendAll(fd, SerializeResponse(response, keep_alive)).ok()) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not a numeric IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  SetNoDelay(fd);
  SetRecvTimeout(fd, kClientRecvTimeoutMs);
  fd_ = fd;
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<HttpResponse> HttpClient::Roundtrip(const HttpRequest& request) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  out += "Host: ndss\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += "\r\n";
  out += request.body;
  Status sent = SendAll(fd_, out);
  if (!sent.ok()) {
    Close();
    return sent;
  }

  MessageReader reader(fd_, /*max_body_bytes=*/256u << 20);
  std::string status_line;
  std::map<std::string, std::string> headers;
  std::string body;
  const MessageReader::Outcome outcome =
      reader.ReadMessage(&status_line, &headers, &body);
  if (outcome != MessageReader::Outcome::kMessage) {
    Close();
    return Status::IOError("reading response failed (closed or timed out)");
  }
  // "HTTP/1.1 <code> <reason>"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    Close();
    return Status::IOError("malformed status line: " + status_line);
  }
  size_t sp2 = status_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) sp2 = status_line.size();
  uint32_t code = 0;
  if (!ParseUint32(status_line.substr(sp1 + 1, sp2 - sp1 - 1), &code)) {
    Close();
    return Status::IOError("malformed status code: " + status_line);
  }
  HttpResponse response;
  response.status = static_cast<int>(code);
  response.headers = std::move(headers);
  response.body = std::move(body);
  const auto it = response.headers.find("connection");
  if (it != response.headers.end() && ToLower(it->second) == "close") {
    Close();
  }
  return response;
}

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return Roundtrip(request);
}

Result<HttpResponse> HttpClient::Post(const std::string& target,
                                      const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = body;
  return Roundtrip(request);
}

}  // namespace net
}  // namespace ndss
