#ifndef NDSS_NET_JSON_H_
#define NDSS_NET_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ndss {
namespace net {

/// A parsed JSON document node. Hand-rolled (no third-party deps, like the
/// rest of the repo): the server's request bodies and the load-test
/// client's response parsing both go through this one type.
///
/// Objects preserve insertion order (a vector of pairs, not a map) so
/// serialization is deterministic and responses diff cleanly; numbers are
/// stored as double — every integer the protocol carries (token ids,
/// counters, byte totals) is below 2^53 and round-trips exactly.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Number(double value) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue Number(uint64_t value) {
    return Number(static_cast<double>(value));
  }
  static JsonValue String(std::string value) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<Member>& members() const { return members_; }

  /// First member named `key`, or nullptr. Lookup is linear: protocol
  /// objects have a handful of fields.
  const JsonValue* Find(const std::string& key) const;

  /// Appends to an array value (must be kArray).
  void Append(JsonValue value) { array_.push_back(std::move(value)); }

  /// Appends a member to an object value (must be kObject). Keys are not
  /// deduplicated; Find returns the first.
  void Set(std::string key, JsonValue value) {
    members_.emplace_back(std::move(key), std::move(value));
  }

  /// Compact serialization (no whitespace), newline-free. Doubles print
  /// with enough digits to round-trip, and integral values below 2^53
  /// print without an exponent or trailing ".0" — so a value that went
  /// through Parse(Dump(v)) compares bit-identical, which the serve
  /// equivalence gates rely on.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

/// Strict recursive-descent parse of exactly one JSON document occupying
/// the whole of `text` (trailing garbage rejected). Numbers are validated
/// with the same strict parser the CLI flag layer uses (common/parse.h).
/// Nesting is limited to 64 levels; InvalidArgument on any malformation.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace net
}  // namespace ndss

#endif  // NDSS_NET_JSON_H_
