#include "net/serve.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "index/varint_block.h"
#include "query/list_cache.h"

namespace ndss {
namespace net {

namespace {

/// RAII admitted-request slot.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<int64_t>* inflight)
      : inflight_(inflight) {}
  ~InflightGuard() { inflight_->fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<int64_t>* const inflight_;
};

/// Reads an optional finite number field: absent leaves `*out` untouched,
/// present-but-not-a-number is an InvalidArgument.
Status GetNumber(const JsonValue& object, const std::string& key,
                 double* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr) return Status::OK();
  if (!field->is_number()) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  *out = field->number();
  return Status::OK();
}

Status GetBoolField(const JsonValue& object, const std::string& key,
                    bool* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr) return Status::OK();
  if (!field->is_bool()) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  *out = field->bool_value();
  return Status::OK();
}

/// Validates one JSON array of token ids. Mirrors the strict CLI token
/// parsing in ndss_query: every element must be an integral number in
/// [0, 2^32), anything else is a loud 400.
Status TokensFromJson(const JsonValue& array, const std::string& what,
                      std::vector<Token>* out) {
  if (!array.is_array()) {
    return Status::InvalidArgument("'" + what + "' must be an array");
  }
  out->clear();
  out->reserve(array.array().size());
  for (const JsonValue& element : array.array()) {
    const double v = element.is_number() ? element.number() : -1;
    if (!element.is_number() || v != std::floor(v) || v < 0 ||
        v > 4294967295.0) {
      return Status::InvalidArgument(
          "'" + what + "' elements must be integer token ids in [0, 2^32)");
    }
    out->push_back(static_cast<Token>(v));
  }
  return Status::OK();
}

void AppendStats(const SearchStats& stats, JsonValue* object) {
  object->Set("stats", SearchStatsToJson(stats));
}

JsonValue SpanToJson(const MatchSpan& span) {
  JsonValue v = JsonValue::Object();
  v.Set("text", JsonValue::Number(static_cast<uint64_t>(span.text)));
  v.Set("begin", JsonValue::Number(static_cast<uint64_t>(span.begin)));
  v.Set("end", JsonValue::Number(static_cast<uint64_t>(span.end)));
  v.Set("collisions",
        JsonValue::Number(static_cast<uint64_t>(span.collisions)));
  v.Set("similarity", JsonValue::Number(span.estimated_similarity));
  return v;
}

JsonValue RectangleToJson(const TextMatchRectangle& rectangle) {
  JsonValue v = JsonValue::Object();
  v.Set("text", JsonValue::Number(static_cast<uint64_t>(rectangle.text)));
  v.Set("x_begin",
        JsonValue::Number(static_cast<uint64_t>(rectangle.rect.x_begin)));
  v.Set("x_end",
        JsonValue::Number(static_cast<uint64_t>(rectangle.rect.x_end)));
  v.Set("y_begin",
        JsonValue::Number(static_cast<uint64_t>(rectangle.rect.y_begin)));
  v.Set("y_end",
        JsonValue::Number(static_cast<uint64_t>(rectangle.rect.y_end)));
  v.Set("collisions",
        JsonValue::Number(static_cast<uint64_t>(rectangle.rect.collisions)));
  return v;
}

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  return response;
}

}  // namespace

JsonValue SearchStatsToJson(const SearchStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("io_bytes", JsonValue::Number(stats.io_bytes));
  v.Set("short_lists",
        JsonValue::Number(static_cast<uint64_t>(stats.short_lists)));
  v.Set("long_lists",
        JsonValue::Number(static_cast<uint64_t>(stats.long_lists)));
  v.Set("empty_lists",
        JsonValue::Number(static_cast<uint64_t>(stats.empty_lists)));
  v.Set("cache_hits",
        JsonValue::Number(static_cast<uint64_t>(stats.cache_hits)));
  v.Set("shared_cache_hits",
        JsonValue::Number(static_cast<uint64_t>(stats.shared_cache_hits)));
  v.Set("windows_scanned", JsonValue::Number(stats.windows_scanned));
  v.Set("candidate_texts", JsonValue::Number(stats.candidate_texts));
  v.Set("degraded_funcs",
        JsonValue::Number(static_cast<uint64_t>(stats.degraded_funcs)));
  v.Set("degraded_shards",
        JsonValue::Number(static_cast<uint64_t>(stats.degraded_shards)));
  v.Set("wall_seconds", JsonValue::Number(stats.wall_seconds));
  v.Set("peak_memory_bytes", JsonValue::Number(stats.peak_memory_bytes));
  return v;
}

void SearchResultToJson(const SearchResult& result, JsonValue* out) {
  JsonValue spans = JsonValue::Array();
  for (const MatchSpan& span : result.spans) spans.Append(SpanToJson(span));
  out->Set("spans", std::move(spans));
  JsonValue rectangles = JsonValue::Array();
  for (const TextMatchRectangle& rectangle : result.rectangles) {
    rectangles.Append(RectangleToJson(rectangle));
  }
  out->Set("rectangles", std::move(rectangles));
  AppendStats(result.stats, out);
}

SearchService::SearchService(ShardedSearcher* searcher, ServeOptions options)
    : searcher_(searcher),
      options_(std::move(options)),
      server_budget_(options_.server_memory_bytes) {}

ServeCounters SearchService::counters() const {
  ServeCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.searches_ok = searches_ok_.load(std::memory_order_relaxed);
  c.rejected_admission = rejected_admission_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.resource_exhausted = resource_exhausted_.load(std::memory_order_relaxed);
  c.invalid = invalid_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.ingests_ok = ingests_ok_.load(std::memory_order_relaxed);
  c.docs_ingested = docs_ingested_.load(std::memory_order_relaxed);
  return c;
}

HttpResponse SearchService::ErrorResponse(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      invalid_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
  }
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String(std::string(
                       StatusCodeToString(status.code()))));
  body.Set("error", JsonValue::String(status.message()));
  return JsonResponse(HttpStatusForCode(status.code()), body);
}

HttpResponse SearchService::Handle(const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (request.target == "/v1/search") {
    if (request.method != "POST") {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse r;
      r.status = 405;
      r.body = "{\"error\":\"use POST\"}";
      return r;
    }
    return HandleSearch(request);
  }
  if (request.target == "/v1/search_batch") {
    if (request.method != "POST") {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse r;
      r.status = 405;
      r.body = "{\"error\":\"use POST\"}";
      return r;
    }
    return HandleSearchBatch(request);
  }
  if (request.target == "/v1/ingest") {
    if (request.method != "POST") {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse r;
      r.status = 405;
      r.body = "{\"error\":\"use POST\"}";
      return r;
    }
    return HandleIngest(request);
  }
  if (request.target == "/v1/status") return HandleStatus();
  if (request.target == "/v1/shards") return HandleShards();
  if (request.target == "/v1/healthz") return HandleHealthz();
  invalid_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse r;
  r.status = 404;
  r.body = "{\"error\":\"unknown route\"}";
  return r;
}

HttpResponse SearchService::HandleSearch(const HttpRequest& request) {
  const QueryContext::Clock::time_point arrival =
      QueryContext::Clock::now();

  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }

  const JsonValue* tokens_field = parsed->Find("tokens");
  if (tokens_field == nullptr) {
    return ErrorResponse(Status::InvalidArgument("missing 'tokens'"));
  }
  std::vector<Token> tokens;
  Status s = TokensFromJson(*tokens_field, "tokens", &tokens);
  if (!s.ok()) return ErrorResponse(s);

  double deadline_ms = static_cast<double>(options_.default_deadline_ms);
  double memory_mb =
      static_cast<double>(options_.default_request_memory_bytes) / (1 << 20);
  double theta = options_.search.theta;
  double debug_sleep_ms = 0;
  bool no_prefix_filter = !options_.search.use_prefix_filter;
  s = GetNumber(*parsed, "deadline_ms", &deadline_ms);
  if (s.ok()) s = GetNumber(*parsed, "memory_mb", &memory_mb);
  if (s.ok()) s = GetNumber(*parsed, "theta", &theta);
  if (s.ok()) s = GetNumber(*parsed, "debug_sleep_ms", &debug_sleep_ms);
  if (s.ok()) s = GetBoolField(*parsed, "no_prefix_filter", &no_prefix_filter);
  if (!s.ok()) return ErrorResponse(s);

  // The deadline header wins over the body field — a proxy can tighten a
  // request without parsing it. Strictly parsed: "abc" is a 400, not an
  // infinite deadline.
  const std::string* header = request.FindHeader("x-ndss-deadline-ms");
  if (header != nullptr && !ParseDouble(*header, &deadline_ms)) {
    return ErrorResponse(Status::InvalidArgument(
        "malformed x-ndss-deadline-ms header: '" + *header + "'"));
  }
  if (deadline_ms < 0 || memory_mb < 0 || debug_sleep_ms < 0) {
    return ErrorResponse(
        Status::InvalidArgument("negative deadline/memory/sleep"));
  }

  // Admission control: reject before any index work.
  const int64_t admitted = inflight_.fetch_add(1, std::memory_order_relaxed);
  InflightGuard guard(&inflight_);
  if (options_.max_inflight > 0 &&
      admitted >= static_cast<int64_t>(options_.max_inflight)) {
    rejected_admission_.fetch_add(1, std::memory_order_relaxed);
    JsonValue body = JsonValue::Object();
    body.Set("code", JsonValue::String("ResourceExhausted"));
    body.Set("error",
             JsonValue::String("admission: too many in-flight requests"));
    return JsonResponse(429, body);
  }

  if (debug_sleep_ms > 0 && options_.allow_debug_sleep) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(debug_sleep_ms * 1000)));
  }

  SearchOptions search_options = options_.search;
  search_options.theta = theta;
  search_options.use_prefix_filter = !no_prefix_filter;

  MemoryBudget request_budget(
      static_cast<uint64_t>(memory_mb * (1 << 20)), &server_budget_);
  QueryContext ctx;
  ctx.set_memory_budget(&request_budget);
  if (deadline_ms > 0) {
    ctx.set_deadline(arrival + std::chrono::microseconds(
                                   static_cast<int64_t>(deadline_ms * 1000)));
  }

  SearchResult result;
  s = searcher_->Search(tokens, search_options, &ctx, &result);
  if (!s.ok()) {
    // Governed outcomes carry the partial stats the query accumulated.
    HttpResponse response = ErrorResponse(s);
    Result<JsonValue> body = ParseJson(response.body);
    if (body.ok()) {
      AppendStats(result.stats, &*body);
      response.body = body->Dump();
    }
    return response;
  }
  searches_ok_.fetch_add(1, std::memory_order_relaxed);
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  SearchResultToJson(result, &body);
  return JsonResponse(200, body);
}

HttpResponse SearchService::HandleSearchBatch(const HttpRequest& request) {
  const QueryContext::Clock::time_point arrival =
      QueryContext::Clock::now();

  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }
  const JsonValue* queries_field = parsed->Find("queries");
  if (queries_field == nullptr || !queries_field->is_array()) {
    return ErrorResponse(
        Status::InvalidArgument("missing 'queries' (array of token arrays)"));
  }
  std::vector<std::vector<Token>> queries;
  queries.reserve(queries_field->array().size());
  for (const JsonValue& entry : queries_field->array()) {
    std::vector<Token> tokens;
    Status s = TokensFromJson(entry, "queries", &tokens);
    if (!s.ok()) return ErrorResponse(s);
    queries.push_back(std::move(tokens));
  }

  double deadline_ms = static_cast<double>(options_.default_deadline_ms);
  double batch_deadline_ms = 0;
  double memory_mb =
      static_cast<double>(options_.default_request_memory_bytes) / (1 << 20);
  double inflight_mb = 0;
  double theta = options_.search.theta;
  bool no_prefix_filter = !options_.search.use_prefix_filter;
  Status s = GetNumber(*parsed, "deadline_ms", &deadline_ms);
  if (s.ok()) s = GetNumber(*parsed, "batch_deadline_ms", &batch_deadline_ms);
  if (s.ok()) s = GetNumber(*parsed, "memory_mb", &memory_mb);
  if (s.ok()) s = GetNumber(*parsed, "inflight_mb", &inflight_mb);
  if (s.ok()) s = GetNumber(*parsed, "theta", &theta);
  if (s.ok()) s = GetBoolField(*parsed, "no_prefix_filter", &no_prefix_filter);
  if (!s.ok()) return ErrorResponse(s);
  const std::string* header = request.FindHeader("x-ndss-deadline-ms");
  if (header != nullptr && !ParseDouble(*header, &batch_deadline_ms)) {
    return ErrorResponse(Status::InvalidArgument(
        "malformed x-ndss-deadline-ms header: '" + *header + "'"));
  }
  if (deadline_ms < 0 || batch_deadline_ms < 0 || memory_mb < 0 ||
      inflight_mb < 0) {
    return ErrorResponse(
        Status::InvalidArgument("negative deadline/memory limit"));
  }

  BatchLimits limits;
  limits.query_timeout_micros = static_cast<int64_t>(deadline_ms * 1000);
  if (batch_deadline_ms > 0) {
    // Absolute, measured from request receipt — parse time is on the
    // clock, exactly like ShardedSearcher's own fan-out composition.
    limits.has_batch_deadline = true;
    limits.batch_deadline =
        arrival + std::chrono::microseconds(
                      static_cast<int64_t>(batch_deadline_ms * 1000));
  }
  limits.max_query_bytes = static_cast<uint64_t>(memory_mb * (1 << 20));
  limits.max_inflight_bytes =
      static_cast<uint64_t>(inflight_mb * (1 << 20));
  limits.inflight_parent = &server_budget_;
  const JsonValue* shed = parsed->Find("shed_policy");
  if (shed != nullptr) {
    if (!shed->is_string()) {
      return ErrorResponse(
          Status::InvalidArgument("'shed_policy' must be a string"));
    }
    if (shed->string_value() == "reject-new") {
      limits.shed_policy = ShedPolicy::kRejectNew;
    } else if (shed->string_value() == "cancel-running") {
      limits.shed_policy = ShedPolicy::kCancelRunning;
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "shed_policy must be reject-new or cancel-running"));
    }
  }

  const int64_t admitted = inflight_.fetch_add(1, std::memory_order_relaxed);
  InflightGuard guard(&inflight_);
  if (options_.max_inflight > 0 &&
      admitted >= static_cast<int64_t>(options_.max_inflight)) {
    rejected_admission_.fetch_add(1, std::memory_order_relaxed);
    JsonValue body = JsonValue::Object();
    body.Set("code", JsonValue::String("ResourceExhausted"));
    body.Set("error",
             JsonValue::String("admission: too many in-flight requests"));
    return JsonResponse(429, body);
  }

  SearchOptions search_options = options_.search;
  search_options.theta = theta;
  search_options.use_prefix_filter = !no_prefix_filter;

  Result<BatchResult> batch = searcher_->SearchBatch(
      queries, search_options, limits, options_.cache_budget_bytes,
      options_.batch_threads);
  if (!batch.ok()) return ErrorResponse(batch.status());

  searches_ok_.fetch_add(1, std::memory_order_relaxed);
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  JsonValue results = JsonValue::Array();
  for (size_t i = 0; i < batch->results.size(); ++i) {
    JsonValue entry = JsonValue::Object();
    const Status& status = batch->statuses[i];
    entry.Set("code", JsonValue::String(
                          std::string(StatusCodeToString(status.code()))));
    entry.Set("http", JsonValue::Number(
                          static_cast<uint64_t>(HttpStatusForCode(
                              status.code()))));
    if (status.ok()) {
      SearchResultToJson(batch->results[i], &entry);
    } else {
      entry.Set("error", JsonValue::String(status.message()));
      AppendStats(batch->results[i].stats, &entry);
    }
    results.Append(std::move(entry));
  }
  body.Set("results", std::move(results));
  const BatchStats& stats = batch->stats;
  JsonValue batch_stats = JsonValue::Object();
  batch_stats.Set("queries_ok", JsonValue::Number(stats.queries_ok));
  batch_stats.Set("queries_degraded",
                  JsonValue::Number(stats.queries_degraded));
  batch_stats.Set("queries_deadline_exceeded",
                  JsonValue::Number(stats.queries_deadline_exceeded));
  batch_stats.Set("queries_shed", JsonValue::Number(stats.queries_shed));
  batch_stats.Set("queries_resource_exhausted",
                  JsonValue::Number(stats.queries_resource_exhausted));
  batch_stats.Set("queries_failed", JsonValue::Number(stats.queries_failed));
  batch_stats.Set("peak_query_bytes",
                  JsonValue::Number(stats.peak_query_bytes));
  batch_stats.Set("peak_inflight_bytes",
                  JsonValue::Number(stats.peak_inflight_bytes));
  body.Set("batch_stats", std::move(batch_stats));
  return JsonResponse(200, body);
}

HttpResponse SearchService::HandleIngest(const HttpRequest& request) {
  Ingester* ingester = ingester_.load(std::memory_order_acquire);
  if (ingester == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("ingestion is not enabled on this server"));
  }

  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }
  const JsonValue* documents_field = parsed->Find("documents");
  if (documents_field == nullptr || !documents_field->is_array()) {
    return ErrorResponse(Status::InvalidArgument(
        "missing 'documents' (array of token arrays)"));
  }
  std::vector<std::vector<Token>> documents;
  documents.reserve(documents_field->array().size());
  for (const JsonValue& entry : documents_field->array()) {
    std::vector<Token> tokens;
    Status s = TokensFromJson(entry, "documents", &tokens);
    if (!s.ok()) return ErrorResponse(s);
    if (tokens.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("'documents' entries must be non-empty"));
    }
    documents.push_back(std::move(tokens));
  }
  if (documents.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("'documents' must not be empty"));
  }

  // Writes compete for the same admission slots as searches: a server
  // drowning in queries sheds ingestion too, instead of wedging on the
  // pipeline lock.
  const int64_t admitted = inflight_.fetch_add(1, std::memory_order_relaxed);
  InflightGuard guard(&inflight_);
  if (options_.max_inflight > 0 &&
      admitted >= static_cast<int64_t>(options_.max_inflight)) {
    rejected_admission_.fetch_add(1, std::memory_order_relaxed);
    JsonValue body = JsonValue::Object();
    body.Set("code", JsonValue::String("ResourceExhausted"));
    body.Set("error",
             JsonValue::String("admission: too many in-flight requests"));
    return JsonResponse(429, body);
  }

  uint64_t last_seqno = 0;
  Status appended = ingester->AppendBatch(documents, &last_seqno);
  if (!appended.ok()) return ErrorResponse(appended);

  ingests_ok_.fetch_add(1, std::memory_order_relaxed);
  docs_ingested_.fetch_add(documents.size(), std::memory_order_relaxed);
  const IngestStats stats = ingester->stats();
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  body.Set("docs", JsonValue::Number(static_cast<uint64_t>(documents.size())));
  body.Set("last_seqno", JsonValue::Number(last_seqno));
  body.Set("applied_seqno", JsonValue::Number(stats.applied_seqno));
  body.Set("delta_docs", JsonValue::Number(stats.delta_docs));
  body.Set("spills", JsonValue::Number(stats.spills));
  return JsonResponse(200, body);
}

HttpResponse SearchService::HandleHealthz() {
  // Liveness is implicit (we answered); readiness demands a fully healthy
  // serving path: replay finished, every shard serving, write path sound.
  const bool replaying = wal_replaying_.load(std::memory_order_acquire);
  size_t unhealthy = 0;
  for (const ShardInfo& shard : searcher_->shards()) {
    if (shard.dropped || shard.health.state == ShardHealth::kQuarantined ||
        shard.health.state == ShardHealth::kProbing) {
      ++unhealthy;
    }
  }
  Ingester* ingester = ingester_.load(std::memory_order_acquire);
  const bool poisoned = ingester != nullptr && ingester->poisoned();
  const bool ready = !replaying && unhealthy == 0 && !poisoned;

  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  body.Set("live", JsonValue::Bool(true));
  body.Set("ready", JsonValue::Bool(ready));
  body.Set("wal_replaying", JsonValue::Bool(replaying));
  body.Set("unhealthy_shards",
           JsonValue::Number(static_cast<uint64_t>(unhealthy)));
  body.Set("ingester_poisoned", JsonValue::Bool(poisoned));
  return JsonResponse(ready ? 200 : 503, body);
}

HttpResponse SearchService::HandleStatus() {
  const IndexMeta meta = searcher_->meta();
  const std::vector<ShardInfo> shards = searcher_->shards();
  size_t serving = 0;
  for (const ShardInfo& shard : shards) {
    if (!shard.dropped && shard.health.state != ShardHealth::kQuarantined &&
        shard.health.state != ShardHealth::kProbing) {
      ++serving;
    }
  }
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  body.Set("epoch", JsonValue::Number(searcher_->epoch()));
  body.Set("k", JsonValue::Number(static_cast<uint64_t>(meta.k)));
  body.Set("t", JsonValue::Number(static_cast<uint64_t>(meta.t)));
  body.Set("num_texts", JsonValue::Number(meta.num_texts));
  body.Set("total_tokens", JsonValue::Number(meta.total_tokens));
  body.Set("num_shards", JsonValue::Number(static_cast<uint64_t>(
                             shards.size())));
  body.Set("serving_shards",
           JsonValue::Number(static_cast<uint64_t>(serving)));
  body.Set("inflight", JsonValue::Number(static_cast<uint64_t>(
                           std::max<int64_t>(0, inflight()))));
  body.Set("max_inflight", JsonValue::Number(static_cast<uint64_t>(
                               options_.max_inflight)));
  JsonValue memory = JsonValue::Object();
  memory.Set("used_bytes", JsonValue::Number(server_budget_.used()));
  memory.Set("peak_bytes", JsonValue::Number(server_budget_.peak()));
  memory.Set("max_bytes", JsonValue::Number(server_budget_.max_bytes()));
  body.Set("server_memory", std::move(memory));
  JsonValue cache_json = JsonValue::Object();
  const CrossQueryListCache* cache = searcher_->list_cache();
  cache_json.Set("enabled", JsonValue::Bool(cache != nullptr));
  if (cache != nullptr) {
    const CrossQueryListCache::Counters cc = cache->counters();
    cache_json.Set("budget_bytes", JsonValue::Number(cache->budget_bytes()));
    cache_json.Set("bytes_used", JsonValue::Number(cc.bytes_used));
    cache_json.Set("entries", JsonValue::Number(cc.entries));
    cache_json.Set("hits", JsonValue::Number(cc.hits));
    cache_json.Set("misses", JsonValue::Number(cc.misses));
    cache_json.Set("insertions", JsonValue::Number(cc.insertions));
    cache_json.Set("evictions", JsonValue::Number(cc.evictions));
    cache_json.Set("invalidations", JsonValue::Number(cc.invalidations));
    const uint64_t lookups = cc.hits + cc.misses;
    cache_json.Set("hit_ratio",
                   JsonValue::Number(lookups == 0
                                         ? 0.0
                                         : static_cast<double>(cc.hits) /
                                               static_cast<double>(lookups)));
  }
  body.Set("list_cache", std::move(cache_json));
  body.Set("decode_path", JsonValue::String(WindowDecodePathName()));
  const ServeCounters c = counters();
  JsonValue counters_json = JsonValue::Object();
  counters_json.Set("requests", JsonValue::Number(c.requests));
  counters_json.Set("searches_ok", JsonValue::Number(c.searches_ok));
  counters_json.Set("rejected_admission",
                    JsonValue::Number(c.rejected_admission));
  counters_json.Set("deadline_exceeded",
                    JsonValue::Number(c.deadline_exceeded));
  counters_json.Set("cancelled", JsonValue::Number(c.cancelled));
  counters_json.Set("resource_exhausted",
                    JsonValue::Number(c.resource_exhausted));
  counters_json.Set("invalid", JsonValue::Number(c.invalid));
  counters_json.Set("failed", JsonValue::Number(c.failed));
  counters_json.Set("ingests_ok", JsonValue::Number(c.ingests_ok));
  counters_json.Set("docs_ingested", JsonValue::Number(c.docs_ingested));
  body.Set("counters", std::move(counters_json));
  return JsonResponse(200, body);
}

HttpResponse SearchService::HandleShards() {
  JsonValue body = JsonValue::Object();
  body.Set("code", JsonValue::String("OK"));
  body.Set("epoch", JsonValue::Number(searcher_->epoch()));
  JsonValue shards_json = JsonValue::Array();
  for (const ShardInfo& shard : searcher_->shards()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("dir", JsonValue::String(shard.dir));
    entry.Set("text_offset", JsonValue::Number(static_cast<uint64_t>(
                                 shard.text_offset)));
    entry.Set("num_texts", JsonValue::Number(shard.num_texts));
    entry.Set("dropped", JsonValue::Bool(shard.dropped));
    entry.Set("health",
              JsonValue::String(ShardHealthName(shard.health.state)));
    entry.Set("drops", JsonValue::Number(shard.health.drops));
    entry.Set("quarantines", JsonValue::Number(shard.health.quarantines));
    entry.Set("reopens", JsonValue::Number(shard.health.reopens));
    entry.Set("transient_failures",
              JsonValue::Number(shard.health.transient_failures));
    entry.Set("corruption_failures",
              JsonValue::Number(shard.health.corruption_failures));
    if (!shard.health.last_error.empty()) {
      entry.Set("last_error", JsonValue::String(shard.health.last_error));
    }
    shards_json.Append(std::move(entry));
  }
  body.Set("shards", std::move(shards_json));
  return JsonResponse(200, body);
}

}  // namespace net
}  // namespace ndss
