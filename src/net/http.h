#ifndef NDSS_NET_HTTP_H_
#define NDSS_NET_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace ndss {
namespace net {

/// One parsed HTTP/1.1 request. Header names are lower-cased at parse
/// time; values keep their bytes (leading/trailing whitespace stripped).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< request path, e.g. "/v1/search"
  std::map<std::string, std::string> headers;
  std::string body;

  const std::string* FindHeader(const std::string& lower_name) const {
    auto it = headers.find(lower_name);
    return it == headers.end() ? nullptr : &it->second;
  }
};

/// One HTTP/1.1 response. Content-Length and Connection are emitted by the
/// server; handlers only fill status/body (and extra headers if needed).
struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Maps an HTTP status code to its canonical reason phrase (a small fixed
/// table; unknown codes get "Unknown").
const char* HttpReasonPhrase(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port()).
  uint16_t port = 0;

  /// Worker threads. One accepted connection occupies one worker for its
  /// lifetime (keep-alive requests are served back to back), so this is
  /// also the concurrent-connection limit; further connections queue in
  /// the accept backlog. Sized by the ndss_serve --threads flag.
  size_t num_threads = 8;

  /// A keep-alive connection idle longer than this is closed. Also bounds
  /// how long Stop() waits for an idle connection to notice shutdown.
  int idle_timeout_ms = 5000;

  /// Requests with a larger body are rejected with 413 before reading.
  size_t max_body_bytes = 64u << 20;
};

/// A minimal blocking HTTP/1.1 server over POSIX sockets: an accept-loop
/// thread plus a ThreadPool of connection workers. Supports exactly what
/// the ndss_serve protocol needs — GET/POST with Content-Length bodies and
/// keep-alive — and nothing else (no TLS, no chunked encoding, no
/// pipelining; requests on one connection are serialized).
///
/// The handler runs on a worker thread and may block (searches do);
/// admission control and request governance live above this layer in
/// SearchService. Thread-safety: Start/Stop from one thread; the handler
/// must be safe for concurrent calls.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept loop and workers. Fails
  /// with IOError if the port cannot be bound.
  Status Start(const HttpServerOptions& options, HttpHandler handler);

  /// Stops accepting, wakes idle connections, drains in-flight handlers,
  /// and joins every thread. Idempotent.
  void Stop();

  /// The bound port (resolved when options.port == 0). 0 before Start.
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  HttpServerOptions options_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
};

/// A blocking client connection with keep-alive, for the load-test client
/// and tests. One connection serves one request at a time; open several
/// for concurrency.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to `host`:`port`. `host` must be a numeric IPv4 address or
  /// "localhost".
  Status Connect(const std::string& host, uint16_t port);

  /// Sends `request` and reads the response. On an IOError the connection
  /// is closed; Connect again to retry (the server may have closed an
  /// idle keep-alive connection under us).
  Result<HttpResponse> Roundtrip(const HttpRequest& request);

  /// Convenience: one-line GET / POST against the open connection.
  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

}  // namespace net
}  // namespace ndss

#endif  // NDSS_NET_HTTP_H_
