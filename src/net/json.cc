#include "net/json.h"

#include <cmath>
#include <cstdio>

#include "common/parse.h"

namespace ndss {
namespace net {

namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double value, std::string* out) {
  // Integers up to 2^53 (token ids, counters, byte totals) print exactly,
  // without scientific notation; everything else round-trips via %.17g.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

/// In-place cursor over the document being parsed.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    NDSS_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        NDSS_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      NDSS_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      NDSS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      NDSS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          NDSS_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (!ConsumeLiteral("\\u")) return Fail("unpaired surrogate");
            uint32_t low = 0;
            NDSS_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0;
    // The same strict parser the flag layer uses: full consumption of the
    // scanned token, finite values only.
    if (pos_ == begin ||
        !ParseDouble(text_.substr(begin, pos_ - begin), &value)) {
      return Fail("malformed number");
    }
    *out = JsonValue::Number(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      AppendNumber(number_, out);
      break;
    case Kind::kString:
      AppendEscaped(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace net
}  // namespace ndss
