#ifndef NDSS_NET_SERVE_H_
#define NDSS_NET_SERVE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/query_context.h"
#include "ingest/ingester.h"
#include "net/http.h"
#include "net/json.h"
#include "query/searcher.h"
#include "shard/sharded_searcher.h"

namespace ndss {
namespace net {

/// Server-side policy for one SearchService.
struct ServeOptions {
  /// Admission control: requests already being served when a new search
  /// arrives. At the limit the new request is rejected immediately with
  /// 429 (code ResourceExhausted, error "admission"), before any index
  /// work. 0 = unlimited. Read-only admin endpoints are exempt.
  size_t max_inflight = 64;

  /// Server-wide memory cap: every request's working-set budget parents
  /// into this one, so concurrent searches share it. 0 = accounting only.
  uint64_t server_memory_bytes = 0;

  /// Per-request working-set cap applied when the request does not name
  /// its own `memory_mb`. 0 = none (the request still parents into the
  /// server budget for accounting).
  uint64_t default_request_memory_bytes = 0;

  /// Deadline applied when the request carries none. 0 = none.
  int64_t default_deadline_ms = 0;

  /// Search defaults; a request's `theta` / `no_prefix_filter` fields
  /// override per call.
  SearchOptions search;

  /// Worker threads and shared-cache budget for /v1/search_batch.
  size_t batch_threads = 1;
  uint64_t cache_budget_bytes = 256ull << 20;

  /// Honors a request's `debug_sleep_ms` field (the handler sleeps before
  /// searching, while counted as in-flight). Test/load-harness only: makes
  /// admission-control rejection deterministic.
  bool allow_debug_sleep = false;
};

/// Monotonic counters for /v1/status and operator logs. Snapshot-read.
struct ServeCounters {
  uint64_t requests = 0;            ///< everything routed, admin included
  uint64_t searches_ok = 0;
  uint64_t rejected_admission = 0;  ///< 429 before touching the index
  uint64_t deadline_exceeded = 0;   ///< 504
  uint64_t cancelled = 0;           ///< 499
  uint64_t resource_exhausted = 0;  ///< 429 from a memory budget
  uint64_t invalid = 0;             ///< 400/404/405
  uint64_t failed = 0;              ///< 5xx
  uint64_t ingests_ok = 0;          ///< successful /v1/ingest requests
  uint64_t docs_ingested = 0;       ///< documents acknowledged via HTTP
};

/// The ndss_serve request router: maps HTTP requests onto the governed
/// ShardedSearcher plumbing.
///
/// Routes:
///   POST /v1/search        {"tokens":[...], "theta":0.8, "deadline_ms":50,
///                           "memory_mb":64, "no_prefix_filter":false}
///   POST /v1/search_batch  {"queries":[[...],...], "deadline_ms":..,
///                           "batch_deadline_ms":.., "memory_mb":..,
///                           "inflight_mb":.., "shed_policy":"reject-new"}
///   POST /v1/ingest        {"documents":[[tok,...],...]} — appends through
///                          the attached Ingester; 200 only after the WAL
///                          fsync (the documents are durable AND visible)
///   GET  /v1/status        server + topology + counters snapshot
///   GET  /v1/shards        per-shard health (self-healing state machine)
///   GET  /v1/healthz       liveness + readiness; 200 when ready, 503 when
///                          not (WAL replay in progress, a shard
///                          quarantined or dropped, or the ingester
///                          poisoned). Admission-exempt like /v1/status, so
///                          an orchestrator's probe never competes with
///                          query traffic for admission slots.
///
/// Governance mapping: `deadline_ms` (or the `x-ndss-deadline-ms` header,
/// which wins) becomes the QueryContext deadline measured from request
/// receipt; `memory_mb` becomes a per-request MemoryBudget parented into
/// the server-wide budget; the in-flight limit rejects before any work.
/// Outcome statuses map to HTTP via HttpStatusForCode (DeadlineExceeded →
/// 504, Cancelled → 499, ResourceExhausted → 429), and a governed failure
/// body carries the partial SearchStats the query accumulated, exactly as
/// the library's partial-stats contract promises.
///
/// Numeric request fields are validated strictly (the JSON layer shares
/// common/parse.h with the CLI flags): a malformed value is a 400, never a
/// silent zero.
///
/// Thread-safety: Handle may be called from any number of server workers;
/// the searcher's own thread-safety covers concurrent searches and online
/// attach/detach.
class SearchService {
 public:
  SearchService(ShardedSearcher* searcher, ServeOptions options);

  /// Attaches the write path. Without one, /v1/ingest answers 400 and
  /// /v1/healthz ignores ingestion state. Observed, not owned; must outlive
  /// the service (or be detached with nullptr first).
  void set_ingester(Ingester* ingester) {
    ingester_.store(ingester, std::memory_order_release);
  }

  /// Marks WAL replay in progress: /v1/healthz reports ready=false until
  /// cleared. Lets ndss_serve bind its port (and answer probes) before the
  /// potentially long recovery pass finishes.
  void set_wal_replaying(bool replaying) {
    wal_replaying_.store(replaying, std::memory_order_release);
  }

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request);

  ServeCounters counters() const;
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  const ServeOptions& options() const { return options_; }

  /// The server-wide budget every request parents into. Exposed so main()
  /// can charge shared subsystems against the same cap — ndss_serve
  /// parents the cross-query list cache here, which makes cached lists and
  /// inflight query memory compete for one server_memory_bytes limit.
  MemoryBudget* server_budget() { return &server_budget_; }

 private:
  HttpResponse HandleSearch(const HttpRequest& request);
  HttpResponse HandleSearchBatch(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleStatus();
  HttpResponse HandleShards();
  HttpResponse HandleHealthz();

  /// 4xx/5xx response with {"code","error"} and counter classification.
  HttpResponse ErrorResponse(const Status& status);

  ShardedSearcher* const searcher_;
  const ServeOptions options_;
  MemoryBudget server_budget_;
  std::atomic<Ingester*> ingester_{nullptr};
  std::atomic<bool> wal_replaying_{false};
  std::atomic<int64_t> inflight_{0};

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> searches_ok_{0};
  std::atomic<uint64_t> rejected_admission_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> resource_exhausted_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> ingests_ok_{0};
  std::atomic<uint64_t> docs_ingested_{0};
};

/// Serializes one SearchResult (spans, rectangles, stats) into `out`'s
/// fields — shared by the single and batch endpoints, and by the clients'
/// equivalence gates which re-serialize direct Searcher answers through
/// the same function to compare byte-for-byte.
void SearchResultToJson(const SearchResult& result, JsonValue* out);

/// Serializes only the stats block (partial-stats bodies on governed
/// failures).
JsonValue SearchStatsToJson(const SearchStats& stats);

}  // namespace net
}  // namespace ndss

#endif  // NDSS_NET_SERVE_H_
