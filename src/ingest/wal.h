#ifndef NDSS_INGEST_WAL_H_
#define NDSS_INGEST_WAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/status.h"
#include "text/types.h"

namespace ndss {

/// Write-ahead log for streaming ingestion: a flat file of CRC32C-framed
/// document records, one per appended document.
///
/// Frame format (little-endian fixed-width fields):
///   payload_len u32    bytes of token payload; must be a multiple of 4
///   seqno u64          strictly increasing within a log
///   payload            payload_len/4 tokens, u32 each
///   crc u32            masked CRC32C over payload_len|seqno|payload
///
/// Durability contract: Append() only buffers; a document is acknowledged
/// (and must survive a crash) only after a Sync() covering it returns OK.
/// Recovery scans frames from the start and stops at the first frame that
/// is torn, checksum-broken, or non-monotone in seqno — everything before
/// it is the valid prefix, everything after is a torn tail to truncate.
/// Because appends are sequential and syncs ordered, a crash can only tear
/// the tail, so "valid prefix" and "acknowledged prefix" coincide.

/// One recovered WAL frame.
struct WalFrame {
  uint64_t seqno = 0;
  std::vector<Token> tokens;
};

/// What a WAL scan found. `frames` is the valid prefix; if the file held
/// more bytes than the prefix, `torn_bytes > 0` and `torn_reason` says why
/// scanning stopped (a clean EOF at a frame boundary leaves both empty).
struct WalScan {
  std::vector<WalFrame> frames;
  uint64_t valid_bytes = 0;  ///< the valid prefix ends here
  uint64_t file_bytes = 0;   ///< total file size at scan time
  uint64_t torn_bytes = 0;   ///< file_bytes - valid_bytes
  std::string torn_reason;   ///< why the scan stopped before EOF
  uint64_t min_seqno = 0;    ///< of the valid prefix (0 when empty)
  uint64_t max_seqno = 0;    ///< of the valid prefix (0 when empty)
};

/// Scans the WAL at `path`. A missing file is an empty log, not an error;
/// only IO failures are errors — any malformed frame just ends the valid
/// prefix. `env` defaults to GetDefaultEnv().
Result<WalScan> ScanWal(const std::string& path, Env* env = nullptr);

/// Scans and repairs: truncates a torn tail back to the last valid frame so
/// a writer can append cleanly. No-op when the log is clean or missing.
Result<WalScan> RecoverWal(const std::string& path, Env* env = nullptr);

/// Appender over a (recovered) WAL file. Not thread-safe — the Ingester
/// serializes all writer calls under its pipeline lock.
///
/// fsync semantics (the fsyncgate rule): a failed Sync() means the kernel
/// may already have dropped the dirty pages, so retrying the fsync — by
/// hand or via RunWithRetry — can "succeed" while the data is gone. The
/// writer therefore poisons itself on the first Append/Flush/Sync failure:
/// every later call returns the original error, and the only way forward is
/// to reopen the log, which re-runs recovery against what actually reached
/// the disk.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it if absent). The caller must
  /// have run RecoverWal first if the file may hold a torn tail.
  static Result<WalWriter> Open(const std::string& path, Env* env = nullptr);

  WalWriter(WalWriter&&) noexcept = default;
  WalWriter& operator=(WalWriter&&) noexcept = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter() = default;

  /// Appends one frame to the OS buffer. Not durable until Sync().
  Status Append(uint64_t seqno, std::span<const Token> tokens);

  /// Makes every appended frame durable. On failure the writer is poisoned
  /// (see class comment) and the caller must treat the unsynced suffix as
  /// lost.
  Status Sync();

  Status Close();

  /// Set after the first failed operation; all calls fail fast with this.
  const Status& poison() const { return poison_; }
  bool poisoned() const { return !poison_.ok(); }

  /// Bytes appended through this writer (durable only up to the last Sync).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  Status Poison(Status status);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  Status poison_ = Status::OK();
  uint64_t bytes_appended_ = 0;
};

/// Serializes one frame (exposed for fsck and tests).
void EncodeWalFrame(uint64_t seqno, std::span<const Token> tokens,
                    std::string* out);

/// Size in bytes of a frame holding `num_tokens` tokens.
constexpr uint64_t WalFrameBytes(uint64_t num_tokens) {
  return 4 + 8 + 4 * num_tokens + 4;
}

}  // namespace ndss

#endif  // NDSS_INGEST_WAL_H_
