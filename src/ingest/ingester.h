#ifndef NDSS_INGEST_INGESTER_H_
#define NDSS_INGEST_INGESTER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "index/index_builder.h"
#include "ingest/wal.h"
#include "shard/sharded_searcher.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Options for streaming ingestion.
struct IngestOptions {
  /// Build parameters of the delta index and every spilled shard. Must
  /// match the set's (k, seed, t) — Open fails otherwise.
  IndexBuildOptions build;

  /// Memtable spill budget: the delta spills to a sealed shard once its
  /// estimated in-memory footprint (16 bytes per indexed window + 4 bytes
  /// per token, the ursadb estimated_size idiom) reaches this.
  uint64_t memtable_budget_bytes = 8ull << 20;

  /// Also spill after this many memtable documents (0 = no document cap).
  uint64_t memtable_max_docs = 0;

  /// Fold a contiguous run of at least this many small shards per
  /// compaction (runs are capped at twice this).
  size_t compaction_fanin = 4;

  /// A shard is "small" (a compaction candidate) at or below this many
  /// texts. 0 = every sealed shard is a candidate, so runs of fanin shards
  /// keep folding into ever-larger tiers.
  uint64_t compaction_small_texts = 0;

  /// Background compactor poll cadence.
  uint64_t compaction_poll_micros = 100'000;

  /// Retry policy for the merge step of a compaction (decorrelated jitter
  /// by default; see RetryPolicy). After the attempts are exhausted the
  /// compaction quarantines itself with exponential backoff — serving and
  /// ingestion are never affected by a failing compaction.
  RetryPolicy compaction_retry;

  /// First backoff after a failed compaction; doubles per consecutive
  /// failure up to 64x.
  uint64_t compaction_quarantine_micros = 1'000'000;

  /// Start the background compactor at Open. Tests drive CompactOnce
  /// directly with this off.
  bool enable_compaction = true;

  IngestOptions() {
    compaction_retry.max_attempts = 3;
    compaction_retry.decorrelated_jitter = true;
  }
};

/// Counters, all monotone since Open (snapshot via Ingester::stats).
struct IngestStats {
  uint64_t docs_appended = 0;    ///< acknowledged (durable) this session
  uint64_t docs_replayed = 0;    ///< recovered from the WAL at Open
  uint64_t wal_torn_bytes = 0;   ///< truncated from the WAL tail at Open
  uint64_t spills = 0;           ///< memtable seals committed
  uint64_t spill_failures = 0;   ///< failed seal attempts (docs stay safe)
  uint64_t compactions = 0;      ///< committed merges
  uint64_t compaction_failures = 0;
  uint64_t last_seqno = 0;       ///< highest acknowledged seqno
  uint64_t applied_seqno = 0;    ///< WAL watermark of the sealed shards
  uint64_t delta_docs = 0;       ///< documents currently in the memtable
  uint64_t delta_bytes = 0;      ///< estimated memtable footprint
  double last_spill_seconds = 0;
};

/// Streaming ingestion for a serving shard set: the write side of the
/// LSM-style lifecycle.
///
///   WAL append + fsync  ->  delta memtable (served live)  ->  spill to a
///   sealed shard (crash-safe build)  ->  manifest commit (epoch + 1,
///   applied_seqno)  ->  background tiered compaction (MergeIndexes)
///
/// Durability contract: Append returns OK only after the document's WAL
/// frame is fsynced — an acknowledged document survives any crash. The
/// memtable is rebuilt from the WAL at Open (recovery truncates a torn
/// tail at the last valid frame; frames at or below the manifest's
/// applied_seqno are skipped, making replay idempotent). A crash mid-spill
/// or mid-compaction leaves the old topology plus unreferenced shard
/// directories, which the next Open sweeps.
///
/// fsync batching: concurrent Append/AppendBatch callers form a group
/// commit — one caller syncs the WAL for everything staged so far while
/// later callers stage behind it, so the fsync rate is bounded by disk
/// latency, not the caller count. Within one AppendBatch all documents
/// share one fsync.
///
/// After a failed WAL write or fsync the ingester is poisoned: every later
/// Append fails with the original error (a failed fsync may have lost the
/// dirty pages, so nothing after it can honestly be acknowledged — the
/// fsyncgate rule). Recovery is a process restart (re-Open), which trusts
/// only what a scan of the on-disk WAL proves durable. Serving is
/// unaffected: the sealed shards and the last installed delta keep
/// answering queries.
///
/// Thread-safety: Append/AppendBatch/Flush/CompactOnce/stats may be called
/// from any number of threads. The ShardedSearcher must outlive the
/// Ingester.
class Ingester {
 public:
  /// Bootstraps an empty serving set at `set_dir`: builds a zero-text
  /// "genesis" shard (streaming-from-nothing needs a valid manifest, and a
  /// manifest needs at least one shard) and commits a manifest for it.
  /// Fails if a manifest already exists.
  static Status CreateSet(const std::string& set_dir,
                          const IndexBuildOptions& build);

  /// Opens the ingest side of `searcher`'s set: sweeps orphaned
  /// ingest/compact directories, recovers the WAL (truncating any torn
  /// tail), replays unapplied frames into a fresh memtable, installs it as
  /// the searcher's delta, and (by default) starts the background
  /// compactor.
  static Result<std::unique_ptr<Ingester>> Open(
      ShardedSearcher* searcher, const IngestOptions& options = {});

  ~Ingester();
  Ingester(const Ingester&) = delete;
  Ingester& operator=(const Ingester&) = delete;

  /// Appends one document. Returns after the document is durable in the
  /// WAL and visible to searches. `seqno` (optional) receives its WAL
  /// sequence number.
  Status Append(std::span<const Token> tokens, uint64_t* seqno = nullptr);

  /// Appends many documents under one group commit (one fsync), in order.
  /// `last_seqno` (optional) receives the last document's sequence number.
  Status AppendBatch(const std::vector<std::vector<Token>>& documents,
                     uint64_t* last_seqno = nullptr);

  /// Commits any staged documents and seals the memtable to a shard now,
  /// regardless of the budget (shutdown, tests). OK with an empty
  /// memtable.
  Status Flush();

  /// Runs one compaction pass synchronously: picks the leftmost contiguous
  /// run of small shards (see IngestOptions), merges it with retry, and
  /// commits the swap. `*compacted` reports whether a merge committed.
  /// Serving continues on the old topology until the commit.
  Status CompactOnce(bool* compacted);

  /// Stops the background compactor (idempotent; no-op if never started).
  void StopCompactor();

  /// Closes the WAL after committing staged documents. Further appends
  /// fail. The memtable stays installed and serving.
  Status Close();

  IngestStats stats() const;

  /// True after a WAL write/fsync failure: appends fail until re-Open.
  bool poisoned() const;

 private:
  struct PendingDoc {
    uint64_t seqno;
    std::vector<Token> tokens;
  };

  Ingester(ShardedSearcher* searcher, IngestOptions options,
           std::string wal_path);

  /// Makes every staged document with seqno <= `target` durable and
  /// visible (group commit; see class comment). Called with no locks held.
  Status CommitThrough(uint64_t target);

  /// Rebuilds the delta searcher from the memtable corpus and installs it.
  /// Caller holds pipeline_mu_.
  Status InstallDeltaLocked();

  /// Estimated memtable footprint (windows * 16 + tokens * 4).
  uint64_t EstimatedDeltaBytesLocked() const;

  /// Seals the memtable into a shard and commits it. Caller holds
  /// pipeline_mu_.
  Status SpillLocked();

  void CompactorLoop();
  void StartCompactor();

  ShardedSearcher* const searcher_;
  const IngestOptions options_;
  const std::string wal_path_;

  /// Staging lock: seqno assignment and the pending-document queue. Never
  /// held across IO.
  mutable std::mutex mu_;
  uint64_t next_seqno_ = 1;
  std::vector<PendingDoc> pending_;
  Status poison_ = Status::OK();
  bool closed_ = false;
  uint64_t visible_seqno_ = 0;  ///< durable AND searchable up to here
  IngestStats stats_;

  /// Pipeline lock: serializes WAL writes/fsyncs, memtable application,
  /// delta rebuilds, spills, and WAL truncation. Queries never take it.
  std::mutex pipeline_mu_;
  std::unique_ptr<WalWriter> wal_;
  Corpus delta_corpus_;
  uint64_t delta_windows_ = 0;   ///< of the last installed delta searcher
  uint64_t durable_seqno_ = 0;   ///< last seqno a successful fsync covered

  /// Background compactor.
  std::thread compactor_;
  std::mutex compact_mu_;  ///< serializes compaction passes
  std::condition_variable compact_cv_;
  bool stop_compactor_ = false;
  bool compactor_running_ = false;
  uint64_t compact_backoff_until_micros_ = 0;
  uint32_t compact_consecutive_failures_ = 0;
  uint64_t compact_counter_ = 0;  ///< uniquifies output directory names
};

}  // namespace ndss

#endif  // NDSS_INGEST_INGESTER_H_
