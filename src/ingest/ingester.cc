#include "ingest/ingester.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/env.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "index/index_merger.h"
#include "shard/shard_manifest.h"

namespace ndss {

namespace {

constexpr char kGenesisEntry[] = "genesis";

// Largest document a WAL frame can carry (payload_len is a u32 of bytes).
constexpr uint64_t kMaxDocTokens =
    std::numeric_limits<uint32_t>::max() / sizeof(Token);

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string NormalizePath(const std::string& path) {
  std::string norm = std::filesystem::path(path).lexically_normal().string();
  while (norm.size() > 1 && norm.back() == '/') norm.pop_back();
  return norm;
}

// Shard directories the ingest pipeline itself created (and therefore owns):
// safe to sweep when orphaned and to delete after a committed compaction.
bool IngestOwnedName(const std::string& name) {
  return name == kGenesisEntry || name.rfind("delta-", 0) == 0 ||
         name.rfind("compact-", 0) == 0;
}

std::string SpillEntryName(uint64_t seqno) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "delta-%020llu",
                static_cast<unsigned long long>(seqno));
  return buf;
}

}  // namespace

Status Ingester::CreateSet(const std::string& set_dir,
                           const IndexBuildOptions& build) {
  Env* env = GetDefaultEnv();
  if (env->FileExists(ShardManifest::Path(set_dir))) {
    return Status::InvalidArgument("shard set already exists at '" + set_dir +
                                   "'");
  }
  NDSS_RETURN_NOT_OK(env->CreateDirectories(set_dir));
  // A manifest needs at least one shard, so an empty set starts from a
  // zero-text genesis shard (compaction folds it away later).
  Corpus empty;
  auto built =
      BuildIndexInMemory(empty, set_dir + "/" + kGenesisEntry, build);
  if (!built.ok()) return built.status();
  ShardManifest manifest;
  manifest.epoch = 1;
  manifest.applied_seqno = 0;
  manifest.shard_dirs = {kGenesisEntry};
  return manifest.Save(set_dir);
}

Ingester::Ingester(ShardedSearcher* searcher, IngestOptions options,
                   std::string wal_path)
    : searcher_(searcher),
      options_(std::move(options)),
      wal_path_(std::move(wal_path)) {}

Result<std::unique_ptr<Ingester>> Ingester::Open(ShardedSearcher* searcher,
                                                 const IngestOptions& options) {
  if (searcher == nullptr) {
    return Status::InvalidArgument("Ingester::Open: null searcher");
  }
  const IndexMeta set_meta = searcher->meta();
  const IndexBuildOptions& build = options.build;
  if (build.k != set_meta.k || build.seed != set_meta.seed ||
      build.t != set_meta.t || build.sketch != set_meta.sketch) {
    return Status::InvalidArgument(
        "ingest build options disagree with the set's (k, seed, t, sketch "
        "scheme)");
  }
  if (options.compaction_fanin < 2) {
    return Status::InvalidArgument("compaction_fanin must be at least 2");
  }

  const std::string& set_dir = searcher->set_dir();
  std::unique_ptr<Ingester> ingester(
      new Ingester(searcher, options, set_dir + "/WAL"));

  // Sweep orphans: ingest-owned shard directories not referenced by the
  // current topology are leftovers of a spill or compaction that crashed
  // before its manifest commit.
  Env* env = GetDefaultEnv();
  {
    std::vector<std::string> live;
    for (const ShardInfo& info : searcher->shards()) {
      live.push_back(NormalizePath(info.dir));
    }
    NDSS_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          env->ListDirectory(set_dir));
    for (const std::string& name : names) {
      if (!IngestOwnedName(name)) continue;
      std::string dir = NormalizePath(set_dir + "/" + name);
      if (std::find(live.begin(), live.end(), dir) != live.end()) continue;
      Status removed = RemoveDirRecursive(dir);
      if (!removed.ok()) {
        NDSS_LOG(kWarning) << "orphan sweep: cannot remove '" << dir
                           << "': " << removed.ToString();
      } else {
        NDSS_LOG(kInfo) << "orphan sweep: removed uncommitted shard '" << dir
                        << "'";
      }
    }
  }

  // Recover the WAL (truncate any torn tail) and replay what the sealed
  // shards do not already contain. Frames at or below applied_seqno are
  // skipped — the idempotency that makes a crash between spill commit and
  // WAL truncation harmless.
  NDSS_ASSIGN_OR_RETURN(WalScan scan, RecoverWal(ingester->wal_path_));
  const uint64_t applied = searcher->applied_seqno();
  uint64_t last = applied;
  for (const WalFrame& frame : scan.frames) {
    if (frame.seqno <= applied) continue;
    ingester->delta_corpus_.AddText(frame.tokens);
    ++ingester->stats_.docs_replayed;
    last = frame.seqno;
  }
  last = std::max(last, scan.max_seqno);
  ingester->next_seqno_ = last + 1;
  ingester->visible_seqno_ = last;
  ingester->durable_seqno_ = last;
  ingester->stats_.wal_torn_bytes = scan.torn_bytes;
  ingester->stats_.last_seqno = last;
  ingester->stats_.applied_seqno = applied;
  if (scan.torn_bytes > 0) {
    NDSS_LOG(kWarning) << "WAL recovery: truncated " << scan.torn_bytes
                       << " torn byte(s) (" << scan.torn_reason << ")";
  }
  if (!ingester->delta_corpus_.empty()) {
    NDSS_RETURN_NOT_OK(ingester->InstallDeltaLocked());
    ingester->stats_.delta_docs = ingester->delta_corpus_.num_texts();
    ingester->stats_.delta_bytes = ingester->EstimatedDeltaBytesLocked();
  }

  NDSS_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Open(ingester->wal_path_));
  ingester->wal_ = std::make_unique<WalWriter>(std::move(writer));

  if (options.enable_compaction) ingester->StartCompactor();
  return ingester;
}

Ingester::~Ingester() {
  StopCompactor();
  Status ignored = Close();
  (void)ignored;
}

Status Ingester::Append(std::span<const Token> tokens, uint64_t* seqno) {
  std::vector<std::vector<Token>> one;
  one.emplace_back(tokens.begin(), tokens.end());
  return AppendBatch(one, seqno);
}

Status Ingester::AppendBatch(const std::vector<std::vector<Token>>& documents,
                             uint64_t* last_seqno) {
  if (documents.empty()) return Status::OK();
  for (const std::vector<Token>& doc : documents) {
    if (doc.size() > kMaxDocTokens) {
      return Status::InvalidArgument("document too large for one WAL frame");
    }
  }
  uint64_t target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Status::InvalidArgument("ingester is closed");
    if (!poison_.ok()) return poison_;
    uint64_t total = static_cast<uint64_t>(searcher_->meta().num_texts) +
                     pending_.size() + documents.size();
    if (total > std::numeric_limits<TextId>::max()) {
      return Status::ResourceExhausted("text id space exhausted (2^32 texts)");
    }
    pending_.reserve(pending_.size() + documents.size());
    for (const std::vector<Token>& doc : documents) {
      pending_.push_back(PendingDoc{next_seqno_++, doc});
    }
    target = next_seqno_ - 1;
  }
  NDSS_RETURN_NOT_OK(CommitThrough(target));
  if (last_seqno != nullptr) *last_seqno = target;
  return Status::OK();
}

Status Ingester::CommitThrough(uint64_t target) {
  std::lock_guard<std::mutex> pipeline(pipeline_mu_);
  std::vector<PendingDoc> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!poison_.ok()) return poison_;
    // A caller that got here behind another committer may find its
    // documents already durable and visible — the group commit.
    if (visible_seqno_ >= target) return Status::OK();
    batch.swap(pending_);
  }
  if (batch.empty()) {
    return Status::Internal("group commit lost staged documents");
  }

  auto poison = [this](Status status) {
    std::lock_guard<std::mutex> lk(mu_);
    poison_ = status;
    return status;
  };

  for (const PendingDoc& doc : batch) {
    Status appended = wal_->Append(doc.seqno, doc.tokens);
    if (!appended.ok()) return poison(appended);
  }
  // One fsync covers the whole drained batch. A failure here is final: the
  // kernel may have dropped the dirty pages, so nothing past the last good
  // sync can be acknowledged (fsyncgate) — the ingester poisons itself and
  // only a re-Open (which re-scans the on-disk log) can resume.
  Status synced = wal_->Sync();
  if (!synced.ok()) return poison(synced);
  durable_seqno_ = batch.back().seqno;

  for (const PendingDoc& doc : batch) delta_corpus_.AddText(doc.tokens);
  NDSS_RETURN_NOT_OK(InstallDeltaLocked());
  {
    std::lock_guard<std::mutex> lk(mu_);
    visible_seqno_ = durable_seqno_;
    stats_.docs_appended += batch.size();
    stats_.last_seqno = durable_seqno_;
    stats_.delta_docs = delta_corpus_.num_texts();
    stats_.delta_bytes = EstimatedDeltaBytesLocked();
  }

  if (EstimatedDeltaBytesLocked() >= options_.memtable_budget_bytes ||
      (options_.memtable_max_docs > 0 &&
       delta_corpus_.num_texts() >= options_.memtable_max_docs)) {
    // Best-effort: the documents are already durable and visible, so a
    // failed spill must not fail the append that tripped the budget. The
    // memtable keeps serving and the next commit retries.
    Status spilled = SpillLocked();
    if (!spilled.ok()) {
      NDSS_LOG(kWarning) << "memtable spill failed (will retry): "
                         << spilled.ToString();
    }
  }
  return Status::OK();
}

Status Ingester::InstallDeltaLocked() {
  NDSS_ASSIGN_OR_RETURN(Searcher delta,
                        Searcher::InMemory(delta_corpus_, options_.build));
  delta_windows_ = delta.TotalWindows();
  return searcher_->SetDelta(std::make_shared<Searcher>(std::move(delta)));
}

uint64_t Ingester::EstimatedDeltaBytesLocked() const {
  // The ursadb estimated_size idiom: 16 bytes per indexed window (posting +
  // bucket overhead) plus the 4-byte tokens of the held texts.
  return delta_windows_ * 16 + delta_corpus_.total_tokens() * 4;
}

Status Ingester::SpillLocked() {
  if (delta_corpus_.empty()) return Status::OK();
  const uint64_t start = NowMicros();
  auto count_failure = [this] {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.spill_failures;
  };

  const std::string entry = SpillEntryName(durable_seqno_);
  const std::string dir = searcher_->set_dir() + "/" + entry;
  // The crash-safe build protocol (CURRENT marker last) makes a half-built
  // spill directory inert; a crash here leaves an orphan the next Open
  // sweeps.
  auto built = BuildIndexInMemory(delta_corpus_, dir, options_.build);
  if (!built.ok()) {
    Status removed = RemoveDirRecursive(dir);
    (void)removed;
    count_failure();
    return built.status();
  }

  // The manifest commit inside PromoteDelta is the atomic point: before it
  // the documents are served from the memtable (and replayed from the WAL
  // after a crash); after it they are served from the sealed shard (and
  // replay skips them via applied_seqno). No window sees them twice or not
  // at all.
  Status promoted = searcher_->PromoteDelta(entry, nullptr, durable_seqno_);
  if (!promoted.ok()) {
    Status removed = RemoveDirRecursive(dir);
    (void)removed;
    count_failure();
    return promoted;
  }

  delta_corpus_.Clear();
  delta_windows_ = 0;

  // Truncating the WAL is advisory cleanup, not correctness: stale frames
  // are at or below applied_seqno and replay skips them. Only a failed
  // *reopen* poisons (no writer = no way to append).
  Status closed = wal_->Close();
  if (!closed.ok()) {
    NDSS_LOG(kWarning) << "WAL close before truncation: " << closed.ToString();
  }
  Status truncated = TruncateFile(wal_path_, 0);
  if (!truncated.ok()) {
    NDSS_LOG(kWarning) << "WAL truncation after spill (stale frames are "
                          "skipped on replay): "
                       << truncated.ToString();
  }
  auto reopened = WalWriter::Open(wal_path_);
  if (!reopened.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    poison_ = reopened.status();
    return poison_;
  }
  wal_ = std::make_unique<WalWriter>(std::move(*reopened));

  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.spills;
    stats_.applied_seqno = durable_seqno_;
    stats_.delta_docs = 0;
    stats_.delta_bytes = 0;
    stats_.last_spill_seconds = (NowMicros() - start) * 1e-6;
  }
  return Status::OK();
}

Status Ingester::Flush() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!poison_.ok()) return poison_;
    target = next_seqno_ - 1;
  }
  if (target > 0) NDSS_RETURN_NOT_OK(CommitThrough(target));
  std::lock_guard<std::mutex> pipeline(pipeline_mu_);
  return SpillLocked();
}

Status Ingester::CompactOnce(bool* compacted) {
  if (compacted != nullptr) *compacted = false;
  std::lock_guard<std::mutex> lk(compact_mu_);

  // Plan: the leftmost contiguous run of healthy small shards, at least
  // fanin long, capped at 2x fanin per pass.
  std::vector<ShardInfo> shards = searcher_->shards();
  const uint64_t small = options_.compaction_small_texts;
  auto candidate = [&](const ShardInfo& info) {
    if (info.dropped || info.health.state != ShardHealth::kHealthy) {
      return false;
    }
    return small == 0 || info.num_texts <= small;
  };
  size_t start = shards.size();
  size_t len = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (!candidate(shards[i])) continue;
    size_t j = i;
    while (j < shards.size() && candidate(shards[j])) ++j;
    if (j - i >= options_.compaction_fanin) {
      start = i;
      len = std::min(j - i, options_.compaction_fanin * 2);
      break;
    }
    i = j;
  }
  if (len == 0) return Status::OK();

  std::vector<std::string> run_dirs;
  for (size_t i = start; i < start + len; ++i) {
    run_dirs.push_back(shards[i].dir);
  }
  const std::string entry = "compact-" + std::to_string(searcher_->epoch()) +
                            "-" + std::to_string(compact_counter_++);
  const std::string out_dir = searcher_->set_dir() + "/" + entry;

  auto count_failure = [this] {
    std::lock_guard<std::mutex> stats_lk(mu_);
    ++stats_.compaction_failures;
  };

  IndexMergeOptions merge_options;
  merge_options.zone_step = options_.build.zone_step;
  merge_options.zone_threshold = options_.build.zone_threshold;
  merge_options.posting_format = options_.build.posting_format;
  // Retry rides out transient IO (decorrelated jitter by default); each
  // attempt starts from a clean output directory.
  Status merged = RunWithRetry(options_.compaction_retry, [&] {
    NDSS_RETURN_NOT_OK(RemoveDirRecursive(out_dir));
    auto r = MergeIndexes(run_dirs, out_dir, merge_options);
    return r.ok() ? Status::OK() : r.status();
  });
  if (!merged.ok()) {
    Status removed = RemoveDirRecursive(out_dir);
    (void)removed;
    count_failure();
    return merged;
  }

  Status replaced = searcher_->ReplaceShards(run_dirs, entry);
  if (replaced.IsNotFound()) {
    // The topology changed under the plan (concurrent attach/detach).
    // Nothing was swapped; discard the merge and let the next pass replan.
    Status removed = RemoveDirRecursive(out_dir);
    (void)removed;
    return Status::OK();
  }
  if (!replaced.ok()) {
    Status removed = RemoveDirRecursive(out_dir);
    (void)removed;
    count_failure();
    return replaced;
  }

  // Committed: the folded inputs are garbage now. Only directories this
  // pipeline created are deleted — externally attached shards are the
  // operator's to manage.
  for (const std::string& dir : run_dirs) {
    std::string name = std::filesystem::path(dir).filename().string();
    if (!IngestOwnedName(name)) continue;
    Status removed = RemoveDirRecursive(dir);
    if (!removed.ok()) {
      NDSS_LOG(kWarning) << "compaction: cannot remove folded shard '" << dir
                         << "': " << removed.ToString();
    }
  }
  {
    std::lock_guard<std::mutex> stats_lk(mu_);
    ++stats_.compactions;
  }
  if (compacted != nullptr) *compacted = true;
  return Status::OK();
}

void Ingester::StartCompactor() {
  std::lock_guard<std::mutex> lk(compact_mu_);
  if (compactor_running_) return;
  compactor_running_ = true;
  stop_compactor_ = false;
  compactor_ = std::thread([this] { CompactorLoop(); });
}

void Ingester::StopCompactor() {
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    if (!compactor_running_) return;
    stop_compactor_ = true;
  }
  compact_cv_.notify_all();
  compactor_.join();
  std::lock_guard<std::mutex> lk(compact_mu_);
  compactor_running_ = false;
  stop_compactor_ = false;
}

void Ingester::CompactorLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lk(compact_mu_);
      compact_cv_.wait_for(
          lk, std::chrono::microseconds(options_.compaction_poll_micros),
          [this] { return stop_compactor_; });
      if (stop_compactor_) return;
      if (NowMicros() < compact_backoff_until_micros_) continue;
    }
    bool did = false;
    Status status = CompactOnce(&did);
    std::unique_lock<std::mutex> lk(compact_mu_);
    if (stop_compactor_) return;
    if (!status.ok()) {
      // Quarantine the compactor, not the shards: serving and ingestion
      // continue untouched while the backoff doubles per consecutive
      // failure (capped at 64x).
      ++compact_consecutive_failures_;
      uint64_t mult = uint64_t{1}
                      << std::min<uint32_t>(compact_consecutive_failures_ - 1,
                                            6u);
      compact_backoff_until_micros_ =
          NowMicros() + options_.compaction_quarantine_micros * mult;
      NDSS_LOG(kWarning) << "background compaction failed ("
                         << status.ToString() << "); backing off "
                         << options_.compaction_quarantine_micros * mult
                         << "us";
    } else {
      compact_consecutive_failures_ = 0;
      compact_backoff_until_micros_ = 0;
    }
  }
}

Status Ingester::Close() {
  StopCompactor();
  uint64_t target;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Status::OK();
    closed_ = true;
    target = poison_.ok() ? next_seqno_ - 1 : 0;
  }
  Status committed = Status::OK();
  if (target > 0) {
    committed = CommitThrough(target);
    // CommitThrough returns OK when everything staged is already visible.
  }
  std::lock_guard<std::mutex> pipeline(pipeline_mu_);
  Status closed = wal_ != nullptr ? wal_->Close() : Status::OK();
  if (!committed.ok()) return committed;
  return closed;
}

IngestStats Ingester::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool Ingester::poisoned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !poison_.ok();
}

}  // namespace ndss
