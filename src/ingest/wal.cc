#include "ingest/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"

namespace ndss {

namespace {
// frame header: payload_len u32 + seqno u64.
constexpr size_t kHeaderBytes = 12;
constexpr size_t kCrcBytes = 4;
}  // namespace

void EncodeWalFrame(uint64_t seqno, std::span<const Token> tokens,
                    std::string* out) {
  const size_t start = out->size();
  PutFixed32(out, static_cast<uint32_t>(tokens.size() * 4));
  PutFixed64(out, seqno);
  for (const Token token : tokens) PutFixed32(out, token);
  const uint32_t crc =
      crc32c::Value(out->data() + start, out->size() - start);
  PutFixed32(out, crc32c::Mask(crc));
}

Result<WalScan> ScanWal(const std::string& path, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  WalScan scan;
  if (!env->FileExists(path)) return scan;

  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->NewRandomAccessFile(path, 1 << 20));
  const uint64_t file_bytes = file->size();
  scan.file_bytes = file_bytes;
  std::string data(file_bytes, '\0');
  uint64_t read = 0;
  while (read < file_bytes) {
    NDSS_ASSIGN_OR_RETURN(
        const size_t n, file->Read(data.data() + read, file_bytes - read));
    if (n == 0) {
      return Status::IOError("wal '" + path + "' shrank while scanning");
    }
    read += n;
  }

  // Scan frames until EOF or the first frame that cannot be valid. Whatever
  // stops the scan — torn header, torn payload, checksum mismatch, a
  // length field that cannot be a real frame, a seqno that goes backwards —
  // marks the torn tail; the frames before it are the durable prefix.
  auto stop = [&](const std::string& reason) {
    scan.torn_bytes = scan.file_bytes - scan.valid_bytes;
    scan.torn_reason = reason;
    return scan;
  };
  uint64_t pos = 0;
  uint64_t prev_seqno = 0;
  while (pos < file_bytes) {
    if (pos + kHeaderBytes + kCrcBytes > file_bytes) {
      return stop("torn frame header");
    }
    const uint32_t payload_len = DecodeFixed32(data.data() + pos);
    if (payload_len % 4 != 0) return stop("frame length not a token multiple");
    const uint64_t frame_bytes = kHeaderBytes + payload_len + kCrcBytes;
    if (pos + frame_bytes > file_bytes) return stop("torn frame payload");
    const uint32_t stored_crc =
        DecodeFixed32(data.data() + pos + kHeaderBytes + payload_len);
    if (crc32c::Value(data.data() + pos, kHeaderBytes + payload_len) !=
        crc32c::Unmask(stored_crc)) {
      return stop("frame checksum mismatch");
    }
    const uint64_t seqno = DecodeFixed64(data.data() + pos + 4);
    if (!scan.frames.empty() && seqno <= prev_seqno) {
      return stop("frame seqno not increasing");
    }
    WalFrame frame;
    frame.seqno = seqno;
    frame.tokens.resize(payload_len / 4);
    for (size_t i = 0; i < frame.tokens.size(); ++i) {
      frame.tokens[i] =
          DecodeFixed32(data.data() + pos + kHeaderBytes + 4 * i);
    }
    if (scan.frames.empty()) scan.min_seqno = seqno;
    scan.max_seqno = seqno;
    prev_seqno = seqno;
    scan.frames.push_back(std::move(frame));
    pos += frame_bytes;
    scan.valid_bytes = pos;
  }
  return scan;
}

Result<WalScan> RecoverWal(const std::string& path, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  NDSS_ASSIGN_OR_RETURN(WalScan scan, ScanWal(path, env));
  if (scan.torn_bytes > 0) {
    NDSS_RETURN_NOT_OK(env->TruncateFile(path, scan.valid_bytes));
  }
  return scan;
}

Result<WalWriter> WalWriter::Open(const std::string& path, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path, /*append=*/true));
  return WalWriter(std::move(file), path);
}

Status WalWriter::Poison(Status status) {
  if (poison_.ok()) poison_ = status;
  return status;
}

Status WalWriter::Append(uint64_t seqno, std::span<const Token> tokens) {
  if (!poison_.ok()) return poison_;
  std::string frame;
  frame.reserve(WalFrameBytes(tokens.size()));
  EncodeWalFrame(seqno, tokens, &frame);
  const Status appended = file_->Append(frame.data(), frame.size());
  if (!appended.ok()) {
    // The file may now hold a torn frame; only a reopen (which re-runs
    // recovery) can re-establish the frame boundary.
    return Poison(appended);
  }
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!poison_.ok()) return poison_;
  const Status synced = file_->Sync();
  // Never retried: after a failed fsync the kernel may have dropped the
  // dirty pages, so a second fsync reporting OK would not mean the data is
  // durable (the fsyncgate failure mode).
  if (!synced.ok()) return Poison(synced);
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const Status closed = file_->Close();
  file_ = nullptr;
  return poison_.ok() ? closed : poison_;
}

}  // namespace ndss
