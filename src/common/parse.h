#ifndef NDSS_COMMON_PARSE_H_
#define NDSS_COMMON_PARSE_H_

#include <cerrno>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace ndss {

/// Strict numeric/boolean parsers shared by the CLI flag layer
/// (tools/tool_flags.h) and the ndss_serve request parsing.
///
/// Unlike bare strtoll/strtod with a null endptr, these reject anything
/// that is not exactly one value: empty strings, leading whitespace,
/// trailing garbage ("0.8x", "12abc"), and out-of-range magnitudes all
/// return false and leave `*out` untouched. That turns the old
/// silent-garbage-to-zero behaviour (`--deadline-ms=abc` parsing as an
/// *infinite* deadline) into a loud failure at the caller.

/// Parses a base-10 signed integer occupying the whole of `s`.
inline bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

/// Parses a base-10 unsigned integer occupying the whole of `s`. A leading
/// '-' is rejected (strtoull would silently wrap it).
inline bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.front() == '-' ||
      std::isspace(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

/// ParseUint64 restricted to the uint32 range (token ids, ports).
inline bool ParseUint32(const std::string& s, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseUint64(s, &wide) ||
      wide > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

/// Parses a finite decimal floating-point value occupying the whole of
/// `s`. Overflow to infinity and "nan"/"inf" spellings are rejected: no
/// flag or request field has a meaningful non-finite value.
inline bool ParseDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  if (value != value || value > std::numeric_limits<double>::max() ||
      value < -std::numeric_limits<double>::max()) {
    return false;
  }
  *out = value;
  return true;
}

/// Accepts exactly "true"/"1" and "false"/"0". "TRUE", "yes", "on" and
/// friends are rejected so a typo cannot silently flip a boolean flag.
inline bool ParseBool(const std::string& s, bool* out) {
  if (s == "true" || s == "1") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace ndss

#endif  // NDSS_COMMON_PARSE_H_
