#include "common/status.h"

namespace ndss {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kOutOfRange:
      return 416;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace ndss
