#include "common/crc32c.h"

#include <array>

#include "common/coding.h"

namespace ndss {
namespace crc32c {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

struct Tables {
  // table[j][b]: CRC contribution of byte value b at lane j of an 8-byte
  // slice (slice-by-8).
  uint32_t table[8][256];

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      table[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = table[0][b];
      for (int j = 1; j < 8; ++j) {
        crc = table[0][crc & 0xff] ^ (crc >> 8);
        table[j][b] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const Tables& t = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t l = crc ^ 0xffffffffu;

  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    l = t.table[0][(l ^ *p++) & 0xff] ^ (l >> 8);
    --n;
  }
  // Slice-by-8 over the aligned middle.
  while (n >= 8) {
    const uint64_t word = DecodeFixed64(reinterpret_cast<const char*>(p)) ^ l;
    l = t.table[7][word & 0xff] ^ t.table[6][(word >> 8) & 0xff] ^
        t.table[5][(word >> 16) & 0xff] ^ t.table[4][(word >> 24) & 0xff] ^
        t.table[3][(word >> 32) & 0xff] ^ t.table[2][(word >> 40) & 0xff] ^
        t.table[1][(word >> 48) & 0xff] ^ t.table[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  // Tail.
  while (n > 0) {
    l = t.table[0][(l ^ *p++) & 0xff] ^ (l >> 8);
    --n;
  }
  return l ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace ndss
