#ifndef NDSS_COMMON_QUERY_CONTEXT_H_
#define NDSS_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace ndss {

/// Thread-safe byte accounting for one query (or one batch of queries).
///
/// A budget tracks `used` bytes with a high-water mark and an optional hard
/// cap (`max_bytes` = 0 means unlimited: the budget only accounts). Budgets
/// form a hierarchy: a per-query arena can parent to a batch-wide inflight
/// budget so `max_inflight_bytes` is enforced across the shared list cache
/// plus every live query arena. Charge/Release are lock-free; a charge that
/// would exceed any cap along the chain fails with ResourceExhausted and
/// leaves all counters unchanged.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(uint64_t max_bytes, MemoryBudget* parent = nullptr)
      : max_bytes_(max_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Accounts `bytes` against this budget and every ancestor. Fails with
  /// ResourceExhausted (and no net change anywhere) if a cap would be
  /// exceeded.
  Status Charge(uint64_t bytes);

  /// Returns `bytes` to this budget and every ancestor.
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t max_bytes() const { return max_bytes_; }

 private:
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  const uint64_t max_bytes_ = 0;  ///< 0 = unlimited (accounting only)
  MemoryBudget* const parent_ = nullptr;
};

/// Per-query resource governance, threaded through the whole query path
/// (Searcher, CollisionCount, IntervalScan, list reads).
///
/// Carries three independent controls, each optional:
///  - a steady-clock deadline: work past it fails with DeadlineExceeded;
///  - a cooperative cancellation flag (non-owning pointer, so one flag can
///    cover many queries): when set, work fails with Cancelled;
///  - a memory budget for the query's working set (decoded lists, candidate
///    groups, scan scratch): overflow fails with ResourceExhausted.
///
/// Every postings loop calls Check() at bounded granularity (every list
/// read, and at least every kCheckIntervalWindows windows within one list),
/// so a query stops within one checkpoint interval of the deadline or
/// cancellation. A default-constructed context governs nothing and adds no
/// overhead beyond two branch checks per checkpoint. The query path also
/// accepts `const QueryContext* ctx == nullptr` everywhere, which skips the
/// checks entirely (the ungoverned fast path is bit-identical to the
/// pre-governance code).
///
/// Thread-safety: the referenced cancel flag and memory budget are safe to
/// share across threads; the context object itself is configured once and
/// then read-only, so one context may serve concurrent readers.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  /// Context whose deadline is `micros` from now (no cancel flag, no
  /// budget).
  static QueryContext WithTimeout(int64_t micros) {
    QueryContext ctx;
    ctx.set_deadline(Clock::now() + std::chrono::microseconds(micros));
    return ctx;
  }

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Microseconds until the deadline (negative once past); INT64_MAX when
  /// no deadline is set.
  int64_t remaining_micros() const {
    if (!has_deadline_) return std::numeric_limits<int64_t>::max();
    return std::chrono::duration_cast<std::chrono::microseconds>(deadline_ -
                                                                 Clock::now())
        .count();
  }

  /// `flag` is observed, not owned; it must outlive every query using this
  /// context. nullptr detaches.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }
  const std::atomic<bool>* cancel_flag() const { return cancel_; }
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// `budget` is shared, not owned; nullptr detaches (no accounting).
  void set_memory_budget(MemoryBudget* budget) { memory_ = budget; }
  MemoryBudget* memory_budget() const { return memory_; }

  /// The governance checkpoint: Cancelled if the flag is set, then
  /// DeadlineExceeded if the deadline has passed, else OK. Cancellation is
  /// checked first — an already-cancelled query should not report a
  /// deadline it never raced.
  Status Check() const;

  /// Charges `bytes` to the attached budget (OK when none is attached).
  Status ChargeMemory(uint64_t bytes) const {
    return memory_ == nullptr ? Status::OK() : memory_->Charge(bytes);
  }
  void ReleaseMemory(uint64_t bytes) const {
    if (memory_ != nullptr) memory_->Release(bytes);
  }

  /// Bounded checkpoint granularity: hot loops over postings re-check the
  /// context at least once per this many windows/endpoints, so overrun past
  /// a deadline is bounded by the time to process one interval. Power of
  /// two (loops use `i & (kCheckIntervalWindows - 1)`).
  static constexpr uint64_t kCheckIntervalWindows = 4096;

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  MemoryBudget* memory_ = nullptr;
};

/// nullptr-tolerant checkpoint: OK when no context governs the caller.
inline Status CheckQueryContext(const QueryContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->Check();
}

/// RAII handle over a context's memory budget: everything charged through
/// it is released when it goes out of scope (query end or early error
/// return), so error paths cannot leak accounted bytes. No-op when `ctx` is
/// nullptr or has no budget attached.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(const QueryContext* ctx) : ctx_(ctx) {}
  ~ScopedMemoryCharge() {
    if (ctx_ != nullptr && charged_ > 0) ctx_->ReleaseMemory(charged_);
  }

  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Adds `bytes` to the budget; on ResourceExhausted nothing is recorded.
  Status Charge(uint64_t bytes) {
    if (ctx_ == nullptr) return Status::OK();
    NDSS_RETURN_NOT_OK(ctx_->ChargeMemory(bytes));
    charged_ += bytes;
    return Status::OK();
  }

  uint64_t charged() const { return charged_; }

 private:
  const QueryContext* ctx_;
  uint64_t charged_ = 0;
};

}  // namespace ndss

#endif  // NDSS_COMMON_QUERY_CONTEXT_H_
