#ifndef NDSS_COMMON_RETRY_H_
#define NDSS_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/env.h"
#include "common/query_context.h"
#include "common/status.h"

namespace ndss {

/// Exponential-backoff retry policy for transient IO failures (the
/// out-of-core spill/merge path uses it so one flaky write does not abort a
/// multi-hour build).
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;

  /// Backoff before the first retry; doubles (x `backoff_multiplier`) after
  /// each failed attempt.
  uint64_t initial_backoff_micros = 1000;

  double backoff_multiplier = 2.0;

  /// Cap on the cumulative backoff slept across all retries of one
  /// RunWithRetry call (0 = no cap). Once the cap is reached, the last
  /// error is returned instead of sleeping again — a flaky read under a
  /// query deadline must not back off past the point of usefulness.
  uint64_t max_total_micros = 0;
};

/// True for failures worth retrying: transient IOError. Corruption,
/// InvalidArgument, and the other categories are deterministic and retrying
/// them only hides bugs.
bool IsRetryableStatus(const Status& status);

/// Runs `op` until it succeeds, returns a non-retryable error, or
/// `policy.max_attempts` attempts are exhausted (the last error is
/// returned). Sleeps through `env` between attempts (nullptr = default env).
/// Retried operations must be idempotent — callers reset their own state
/// (e.g. reopen a file, rewind a buffer) inside `op`.
///
/// With a `ctx`, retrying is deadline-aware: the backoff sleep is clamped
/// to the remaining time and no attempt is made once the deadline passes
/// (or the query is cancelled). When the context stops the retrying, its
/// status — DeadlineExceeded / Cancelled — is returned rather than the last
/// transient error: the operation had retries left and only the caller's
/// limit ended them, so the outcome classifies as a governed stop (the
/// transient error is still logged by the retry loop).
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, Env* env = nullptr,
                    const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_COMMON_RETRY_H_
