#ifndef NDSS_COMMON_RETRY_H_
#define NDSS_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/env.h"
#include "common/query_context.h"
#include "common/status.h"

namespace ndss {

/// Exponential-backoff retry policy for transient IO failures (the
/// out-of-core spill/merge path uses it so one flaky write does not abort a
/// multi-hour build).
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;

  /// Backoff before the first retry; doubles (x `backoff_multiplier`) after
  /// each failed attempt.
  uint64_t initial_backoff_micros = 1000;

  double backoff_multiplier = 2.0;

  /// Cap on the cumulative backoff slept across all retries of one
  /// RunWithRetry call (0 = no cap). Once the cap is reached, the last
  /// error is returned instead of sleeping again — a flaky read under a
  /// query deadline must not back off past the point of usefulness.
  uint64_t max_total_micros = 0;

  /// Decorrelated jitter. With the deterministic schedule above, every
  /// per-shard query that hits the same flaky device retries in lockstep
  /// and re-collides on every attempt. When true, each backoff is instead
  /// drawn uniformly from [initial_backoff_micros, prev_sleep *
  /// backoff_multiplier] (AWS's "decorrelated jitter"), which keeps the
  /// same expected growth while spreading concurrent retriers apart.
  bool decorrelated_jitter = false;

  /// Seed for the jitter RNG. 0 (the default) derives a distinct seed per
  /// RunWithRetry call from a process-wide counter — concurrent retry
  /// loops decorrelate, which is the point. Nonzero makes the schedule
  /// fully deterministic for tests.
  uint64_t jitter_seed = 0;
};

/// True for failures worth retrying: transient IOError. Corruption,
/// InvalidArgument, and the other categories are deterministic and retrying
/// them only hides bugs.
bool IsRetryableStatus(const Status& status);

/// Runs `op` until it succeeds, returns a non-retryable error, or
/// `policy.max_attempts` attempts are exhausted (the last error is
/// returned). Sleeps through `env` between attempts (nullptr = default env).
/// Retried operations must be idempotent — callers reset their own state
/// (e.g. reopen a file, rewind a buffer) inside `op`.
///
/// With a `ctx`, retrying is deadline-aware: the backoff sleep is clamped
/// to the remaining time and no attempt is made once the deadline passes
/// (or the query is cancelled). When the context stops the retrying, its
/// status — DeadlineExceeded / Cancelled — is returned rather than the last
/// transient error: the operation had retries left and only the caller's
/// limit ended them, so the outcome classifies as a governed stop (the
/// transient error is still logged by the retry loop).
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, Env* env = nullptr,
                    const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_COMMON_RETRY_H_
