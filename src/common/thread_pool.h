#ifndef NDSS_COMMON_THREAD_POOL_H_
#define NDSS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ndss {

/// Fixed-size worker pool used by the parallel index builder.
///
/// Tasks are arbitrary callables; `WaitIdle()` blocks until every submitted
/// task has finished, which is how the builder joins a batch of per-thread
/// compact-window generation jobs before merging (Section 3.4 of the paper).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for outstanding tasks and joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for every i in [0, n) on up to `num_threads` threads and
/// waits for completion. Work is distributed in contiguous chunks.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace ndss

#endif  // NDSS_COMMON_THREAD_POOL_H_
