#include "common/file_io.h"

#include "common/coding.h"
#include "common/logging.h"

namespace ndss {

// ---------------------------------------------------------------- FileWriter

FileWriter::FileWriter(std::unique_ptr<WritableFile> file, std::string path,
                       size_t buffer_size)
    : file_(std::move(file)),
      path_(std::move(path)),
      buffer_capacity_(buffer_size) {
  buffer_.reserve(buffer_capacity_);
}

Result<FileWriter> FileWriter::Open(const std::string& path,
                                    size_t buffer_size, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path, /*append=*/false));
  return FileWriter(std::move(file), path, buffer_size);
}

Result<FileWriter> FileWriter::OpenForAppend(const std::string& path,
                                             size_t buffer_size, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        env->NewWritableFile(path, /*append=*/true));
  return FileWriter(std::move(file), path, buffer_size);
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : file_(std::move(other.file_)),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      buffer_capacity_(other.buffer_capacity_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      NDSS_LOG(kWarning) << "FileWriter '" << path_
                         << "' replaced without Close(); write errors (and "
                            "possibly data) are being dropped";
      Flush().ok();  // best effort
      file_->Close().ok();
    }
    file_ = std::move(other.file_);
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    buffer_capacity_ = other.buffer_capacity_;
    bytes_written_ = other.bytes_written_;
    other.file_ = nullptr;
  }
  return *this;
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    // A dirty implicit close cannot report failures: the final flush/close
    // status has nowhere to go, so lost writes would be silent. Call sites
    // must Close() and check; this warning catches the ones that do not.
    NDSS_LOG(kWarning) << "FileWriter '" << path_
                       << "' destroyed without Close(); write errors (and "
                          "possibly data) are being dropped";
    Flush().ok();  // best effort
    file_->Close().ok();
    file_ = nullptr;
  }
}

Status FileWriter::Append(const void* data, size_t size) {
  if (file_ == nullptr) return Status::IOError("writer is closed: " + path_);
  const char* src = static_cast<const char*>(data);
  // Large writes bypass the buffer after draining it.
  if (size >= buffer_capacity_) {
    NDSS_RETURN_NOT_OK(Flush());
    NDSS_RETURN_NOT_OK(file_->Append(src, size));
    bytes_written_ += size;
    return Status::OK();
  }
  if (buffer_.size() + size > buffer_capacity_) {
    NDSS_RETURN_NOT_OK(Flush());
  }
  buffer_.append(src, size);
  bytes_written_ += size;
  return Status::OK();
}

Status FileWriter::AppendU32(uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  return Append(buf, sizeof(buf));
}

Status FileWriter::AppendU64(uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  return Append(buf, sizeof(buf));
}

Status FileWriter::Flush() {
  if (file_ == nullptr) return Status::IOError("writer is closed: " + path_);
  if (!buffer_.empty()) {
    NDSS_RETURN_NOT_OK(file_->Append(buffer_.data(), buffer_.size()));
    buffer_.clear();
  }
  return Status::OK();
}

Status FileWriter::Sync() {
  NDSS_RETURN_NOT_OK(Flush());
  return file_->Sync();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status flush_status = Flush();
  Status close_status = file_->Close();
  file_ = nullptr;
  if (!flush_status.ok()) return flush_status;
  return close_status;
}

// ---------------------------------------------------------------- FileReader

FileReader::FileReader(std::unique_ptr<RandomAccessFile> file,
                       std::string path, uint64_t file_size)
    : file_(std::move(file)), path_(std::move(path)), file_size_(file_size) {}

FileReader::FileReader(FileReader&& other) noexcept
    : file_(std::move(other.file_)),
      path_(std::move(other.path_)),
      file_size_(other.file_size_),
      position_(other.position_),
      bytes_read_(other.bytes_read_.load(std::memory_order_relaxed)) {}

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    file_ = std::move(other.file_);
    path_ = std::move(other.path_);
    file_size_ = other.file_size_;
    position_ = other.position_;
    bytes_read_.store(other.bytes_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  return *this;
}

Result<FileReader> FileReader::Open(const std::string& path,
                                    size_t buffer_size, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        env->NewRandomAccessFile(path, buffer_size));
  const uint64_t size = file->size();
  return FileReader(std::move(file), path, size);
}

Status FileReader::ReadExact(void* out, size_t size) {
  NDSS_ASSIGN_OR_RETURN(size_t n, Read(out, size));
  if (n != size) {
    return Status::IOError("short read from '" + path_ + "': wanted " +
                           std::to_string(size) + " got " + std::to_string(n));
  }
  return Status::OK();
}

Result<size_t> FileReader::Read(void* out, size_t size) {
  if (file_ == nullptr) return Status::IOError("reader is closed: " + path_);
  NDSS_ASSIGN_OR_RETURN(size_t n, file_->Read(out, size));
  position_ += n;
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

Status FileReader::ReadAt(uint64_t offset, void* out, size_t size) {
  if (file_ == nullptr) return Status::IOError("reader is closed: " + path_);
  NDSS_ASSIGN_OR_RETURN(size_t n, file_->ReadAt(offset, out, size));
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  if (n != size) {
    return Status::IOError("short read from '" + path_ + "' at offset " +
                           std::to_string(offset) + ": wanted " +
                           std::to_string(size) + " got " + std::to_string(n));
  }
  return Status::OK();
}

Result<uint32_t> FileReader::ReadU32() {
  char buf[4];
  NDSS_RETURN_NOT_OK(ReadExact(buf, sizeof(buf)));
  return DecodeFixed32(buf);
}

Result<uint64_t> FileReader::ReadU64() {
  char buf[8];
  NDSS_RETURN_NOT_OK(ReadExact(buf, sizeof(buf)));
  return DecodeFixed64(buf);
}

Status FileReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return Status::IOError("reader is closed: " + path_);
  NDSS_RETURN_NOT_OK(file_->Seek(offset));
  position_ = offset;
  return Status::OK();
}

// ------------------------------------------------------------------- helpers

bool FileExists(const std::string& path) {
  return GetDefaultEnv()->FileExists(path);
}

Result<uint64_t> FileSize(const std::string& path) {
  return GetDefaultEnv()->GetFileSize(path);
}

Status RemoveFile(const std::string& path) {
  return GetDefaultEnv()->RemoveFile(path);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  return GetDefaultEnv()->TruncateFile(path, size);
}

Status RemoveDirRecursive(const std::string& path) {
  Env* env = GetDefaultEnv();
  if (!env->FileExists(path)) return Status::OK();
  NDSS_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        env->ListDirectory(path));
  for (const std::string& name : names) {
    NDSS_RETURN_NOT_OK(env->RemoveFile(path + "/" + name));
  }
  return env->RemoveDirectory(path);
}

Status RenameFile(const std::string& from, const std::string& to) {
  return GetDefaultEnv()->RenameFile(from, to);
}

Status CreateDirectories(const std::string& path) {
  return GetDefaultEnv()->CreateDirectories(path);
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  return GetDefaultEnv()->ListDirectory(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
  std::string data;
  data.resize(reader.size());
  if (!data.empty()) {
    NDSS_RETURN_NOT_OK(reader.ReadExact(data.data(), data.size()));
  }
  return data;
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path));
  NDSS_RETURN_NOT_OK(writer.Append(data));
  return writer.Close();
}

Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(tmp));
    NDSS_RETURN_NOT_OK(writer.Append(data));
    NDSS_RETURN_NOT_OK(writer.Sync());
    NDSS_RETURN_NOT_OK(writer.Close());
  }
  return RenameFile(tmp, path);
}

}  // namespace ndss
