#include "common/file_io.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/coding.h"

namespace ndss {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------- FileWriter

FileWriter::FileWriter(std::FILE* file, std::string path, size_t buffer_size)
    : file_(file), path_(std::move(path)), buffer_capacity_(buffer_size) {
  buffer_.reserve(buffer_capacity_);
}

Result<FileWriter> FileWriter::Open(const std::string& path,
                                    size_t buffer_size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("open for write", path));
  }
  return FileWriter(file, path, buffer_size);
}

Result<FileWriter> FileWriter::OpenForAppend(const std::string& path,
                                             size_t buffer_size) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("open for append", path));
  }
  return FileWriter(file, path, buffer_size);
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      buffer_capacity_(other.buffer_capacity_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      Flush().ok();  // best effort; destructor-path close
      std::fclose(file_);
    }
    file_ = other.file_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    buffer_capacity_ = other.buffer_capacity_;
    bytes_written_ = other.bytes_written_;
    other.file_ = nullptr;
  }
  return *this;
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    Flush().ok();  // best effort
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status FileWriter::Append(const void* data, size_t size) {
  if (file_ == nullptr) return Status::IOError("writer is closed: " + path_);
  const char* src = static_cast<const char*>(data);
  // Large writes bypass the buffer after draining it.
  if (size >= buffer_capacity_) {
    NDSS_RETURN_NOT_OK(Flush());
    if (std::fwrite(src, 1, size, file_) != size) {
      return Status::IOError(ErrnoMessage("write", path_));
    }
    bytes_written_ += size;
    return Status::OK();
  }
  if (buffer_.size() + size > buffer_capacity_) {
    NDSS_RETURN_NOT_OK(Flush());
  }
  buffer_.append(src, size);
  bytes_written_ += size;
  return Status::OK();
}

Status FileWriter::AppendU32(uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  return Append(buf, sizeof(buf));
}

Status FileWriter::AppendU64(uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  return Append(buf, sizeof(buf));
}

Status FileWriter::Flush() {
  if (file_ == nullptr) return Status::IOError("writer is closed: " + path_);
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      return Status::IOError(ErrnoMessage("write", path_));
    }
    buffer_.clear();
  }
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status flush_status = Flush();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (!flush_status.ok()) return flush_status;
  if (rc != 0) return Status::IOError(ErrnoMessage("close", path_));
  return Status::OK();
}

// ---------------------------------------------------------------- FileReader

FileReader::FileReader(std::FILE* file, std::string path, uint64_t file_size)
    : file_(file), path_(std::move(path)), file_size_(file_size) {}

Result<FileReader> FileReader::Open(const std::string& path,
                                    size_t buffer_size) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("open for read", path));
  }
  if (buffer_size > 0) {
    // stdio's own buffer provides read-ahead for sequential scans.
    std::setvbuf(file, nullptr, _IOFBF, buffer_size);
  }
  struct stat st;
  if (fstat(fileno(file), &st) != 0) {
    std::fclose(file);
    return Status::IOError(ErrnoMessage("stat", path));
  }
  return FileReader(file, path, static_cast<uint64_t>(st.st_size));
}

FileReader::FileReader(FileReader&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      file_size_(other.file_size_),
      position_(other.position_),
      bytes_read_(other.bytes_read_) {
  other.file_ = nullptr;
}

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    file_size_ = other.file_size_;
    position_ = other.position_;
    bytes_read_ = other.bytes_read_;
    other.file_ = nullptr;
  }
  return *this;
}

FileReader::~FileReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status FileReader::ReadExact(void* out, size_t size) {
  NDSS_ASSIGN_OR_RETURN(size_t n, Read(out, size));
  if (n != size) {
    return Status::IOError("short read from '" + path_ + "': wanted " +
                           std::to_string(size) + " got " + std::to_string(n));
  }
  return Status::OK();
}

Result<size_t> FileReader::Read(void* out, size_t size) {
  if (file_ == nullptr) return Status::IOError("reader is closed: " + path_);
  size_t n = std::fread(out, 1, size, file_);
  if (n < size && std::ferror(file_)) {
    return Status::IOError(ErrnoMessage("read", path_));
  }
  position_ += n;
  bytes_read_ += n;
  return n;
}

Status FileReader::ReadAt(uint64_t offset, void* out, size_t size) {
  NDSS_RETURN_NOT_OK(Seek(offset));
  return ReadExact(out, size);
}

Result<uint32_t> FileReader::ReadU32() {
  char buf[4];
  NDSS_RETURN_NOT_OK(ReadExact(buf, sizeof(buf)));
  return DecodeFixed32(buf);
}

Result<uint64_t> FileReader::ReadU64() {
  char buf[8];
  NDSS_RETURN_NOT_OK(ReadExact(buf, sizeof(buf)));
  return DecodeFixed64(buf);
}

Status FileReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return Status::IOError("reader is closed: " + path_);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek", path_));
  }
  position_ = offset;
  return Status::OK();
}

// ------------------------------------------------------------------- helpers

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("file_size '" + path + "': " + ec.message());
  return size;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IOError("remove '" + path + "': " + ec.message());
  return Status::OK();
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  NDSS_ASSIGN_OR_RETURN(FileReader reader, FileReader::Open(path));
  std::string data;
  data.resize(reader.size());
  if (!data.empty()) {
    NDSS_RETURN_NOT_OK(reader.ReadExact(data.data(), data.size()));
  }
  return data;
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  NDSS_ASSIGN_OR_RETURN(FileWriter writer, FileWriter::Open(path));
  NDSS_RETURN_NOT_OK(writer.Append(data));
  return writer.Close();
}

}  // namespace ndss
