#ifndef NDSS_COMMON_LOGGING_H_
#define NDSS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ndss {

/// Severity of a log message. Messages below the global threshold are
/// discarded; kFatal aborts the process after emitting.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: collects a message and emits it on destruction.
/// Use through the NDSS_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ndss

/// Emits a log line at the given severity, e.g.
///   NDSS_LOG(kInfo) << "built " << n << " windows";
#define NDSS_LOG(severity)                                        \
  ::ndss::internal::LogMessage(::ndss::LogLevel::severity, __FILE__, \
                               __LINE__)

/// Aborts with a message if `condition` is false. Active in all build types;
/// use for invariants whose violation implies memory corruption or an
/// unrecoverable programming error.
#define NDSS_CHECK(condition)                                    \
  if (!(condition))                                              \
  ::ndss::internal::LogMessage(::ndss::LogLevel::kFatal, __FILE__, \
                               __LINE__)                         \
      << "Check failed: " #condition " "

#endif  // NDSS_COMMON_LOGGING_H_
