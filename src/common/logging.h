#ifndef NDSS_COMMON_LOGGING_H_
#define NDSS_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace ndss {

/// Severity of a log message. Messages below the global threshold are
/// discarded; kFatal aborts the process after emitting.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: collects a message and emits it on destruction.
/// Use through the NDSS_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Stream manipulator emitted by the rate-limited log macros: prints a
/// "[N similar suppressed] " prefix when suppressions happened since the
/// last emitted message, nothing otherwise.
struct Suppressed {
  uint64_t count;
};
std::ostream& operator<<(std::ostream& os, const Suppressed& suppressed);

/// Token gate for NDSS_LOG_EVERY_SECONDS: at most one log per interval per
/// call site, counting how many messages were swallowed in between.
/// Lock-free; safe to hit from many threads.
class LogRateLimiter {
 public:
  /// True when this call may log; `*suppressed` then receives (and resets)
  /// the number of calls rejected since the last accepted one.
  bool ShouldLog(double interval_seconds, uint64_t* suppressed);

 private:
  std::atomic<int64_t> next_allowed_nanos_{0};
  std::atomic<uint64_t> suppressed_{0};
};

}  // namespace internal
}  // namespace ndss

/// Emits a log line at the given severity, e.g.
///   NDSS_LOG(kInfo) << "built " << n << " windows";
#define NDSS_LOG(severity)                                        \
  ::ndss::internal::LogMessage(::ndss::LogLevel::severity, __FILE__, \
                               __LINE__)

#define NDSS_LOG_INTERNAL_CAT2(a, b) a##b
#define NDSS_LOG_INTERNAL_CAT(a, b) NDSS_LOG_INTERNAL_CAT2(a, b)

/// Sampled logging: emits the 1st, (n+1)th, (2n+1)th, ... hit of this call
/// site, prefixing each emitted line with the number of suppressed
/// occurrences. Deterministic (count-based), so tests can assert on it.
/// Expands to more than one statement — use standalone, never as an
/// unbraced if/else body.
#define NDSS_LOG_EVERY_N(severity, n)                                       \
  static ::std::atomic<::std::uint64_t> NDSS_LOG_INTERNAL_CAT(              \
      ndss_log_occurrences_, __LINE__){0};                                  \
  ::std::uint64_t NDSS_LOG_INTERNAL_CAT(ndss_log_occ_, __LINE__) =          \
      NDSS_LOG_INTERNAL_CAT(ndss_log_occurrences_, __LINE__)                \
          .fetch_add(1, ::std::memory_order_relaxed);                       \
  if (NDSS_LOG_INTERNAL_CAT(ndss_log_occ_, __LINE__) % (n) == 0)            \
  NDSS_LOG(severity) << ::ndss::internal::Suppressed{                       \
      NDSS_LOG_INTERNAL_CAT(ndss_log_occ_, __LINE__) == 0                   \
          ? 0                                                               \
          : static_cast<::std::uint64_t>(n) - 1}

/// Time-based rate limiting: at most one line per `secs` seconds from this
/// call site, prefixing each emitted line with how many were suppressed in
/// between. The right tool for warning paths that a fault storm can hit
/// thousands of times per second (retry loops, degraded shard drops).
/// Expands to more than one statement — use standalone, never as an
/// unbraced if/else body.
#define NDSS_LOG_EVERY_SECONDS(severity, secs)                              \
  static ::ndss::internal::LogRateLimiter NDSS_LOG_INTERNAL_CAT(            \
      ndss_log_limiter_, __LINE__);                                         \
  ::std::uint64_t NDSS_LOG_INTERNAL_CAT(ndss_log_suppressed_, __LINE__) =   \
      0;                                                                    \
  if (NDSS_LOG_INTERNAL_CAT(ndss_log_limiter_, __LINE__)                    \
          .ShouldLog((secs),                                                \
                     &NDSS_LOG_INTERNAL_CAT(ndss_log_suppressed_,           \
                                            __LINE__)))                     \
  NDSS_LOG(severity) << ::ndss::internal::Suppressed{                       \
      NDSS_LOG_INTERNAL_CAT(ndss_log_suppressed_, __LINE__)}

/// Aborts with a message if `condition` is false. Active in all build types;
/// use for invariants whose violation implies memory corruption or an
/// unrecoverable programming error.
#define NDSS_CHECK(condition)                                    \
  if (!(condition))                                              \
  ::ndss::internal::LogMessage(::ndss::LogLevel::kFatal, __FILE__, \
                               __LINE__)                         \
      << "Check failed: " #condition " "

#endif  // NDSS_COMMON_LOGGING_H_
