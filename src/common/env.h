#ifndef NDSS_COMMON_ENV_H_
#define NDSS_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ndss {

/// Abstract append-only file handle produced by an Env.
///
/// Appends are not durable until Sync() succeeds: a process or machine crash
/// may lose any bytes written since the last Sync. Implementations are not
/// thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `size` bytes from `data`.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Pushes application-level buffers to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flushes and makes all appended bytes durable (fsync).
  virtual Status Sync() = 0;

  /// Flushes and closes the handle. Idempotent.
  virtual Status Close() = 0;
};

/// Abstract positioned/sequential read handle produced by an Env.
///
/// The streaming cursor (Read/Seek) carries mutable state and is not
/// thread-safe. ReadAt is positional (pread-style), touches no shared
/// state, and may be called concurrently from any number of threads —
/// including concurrently with the streaming cursor.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `size` bytes at the cursor; returns bytes read (0 at EOF).
  virtual Result<size_t> Read(void* out, size_t size) = 0;

  /// Reads up to `size` bytes at absolute `offset` without touching the
  /// streaming cursor; returns bytes read (short only at EOF). Thread-safe.
  virtual Result<size_t> ReadAt(uint64_t offset, void* out, size_t size) = 0;

  /// Moves the cursor to absolute `offset`.
  virtual Status Seek(uint64_t offset) = 0;

  /// File size at open time.
  virtual uint64_t size() const = 0;
};

/// File-system abstraction (the RocksDB Env idiom). All NDSS file IO routes
/// through an Env, so tests can substitute a FaultInjectionEnv that fails,
/// corrupts, or "crashes" at any file operation. Production code uses the
/// POSIX Env returned by Env::Posix().
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Posix();

  /// Opens `path` for writing; truncates unless `append`.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) = 0;

  /// Opens `path` for reading. `buffer_size` sizes the OS read-ahead buffer
  /// (0 disables).
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path, size_t buffer_size) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates (or extends with zeros) `path` to exactly `size` bytes. Used
  /// by WAL recovery to cut a torn tail back to the last valid frame. Must
  /// not be called while a writer holds the file open.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Removes the *empty* directory `path`; OK if it does not exist.
  virtual Status RemoveDirectory(const std::string& path) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if it exists. This is
  /// the commit primitive of the crash-safe build protocol.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status CreateDirectories(const std::string& path) = 0;

  /// Names (not paths) of the entries of directory `path`.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;

  /// Sleeps for `micros` microseconds (retry backoff hook; fake envs may
  /// return immediately).
  virtual void SleepMicros(uint64_t micros) = 0;
};

/// The Env used when one is not passed explicitly. Defaults to Env::Posix().
Env* GetDefaultEnv();

/// Overrides the default Env (tests). Pass nullptr to restore Env::Posix().
/// Not synchronized with in-flight IO: call only while no NDSS file handles
/// are open.
void SetDefaultEnv(Env* env);

}  // namespace ndss

#endif  // NDSS_COMMON_ENV_H_
