#ifndef NDSS_COMMON_CRC32C_H_
#define NDSS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ndss {
namespace crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by every v2 on-disk format. Software slice-by-8
/// implementation: eight table lookups per 8 input bytes.

/// Returns the CRC of the concatenation of A and `data[0, n)`, where
/// `crc` is the CRC of A.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC of `data[0, n)`.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

inline constexpr uint32_t kMaskDelta = 0xa282ead8u;

/// Masked CRC, as stored on disk. Storing the CRC of a region that itself
/// contains embedded CRCs is error-prone (a CRC of data including its own
/// CRC has pathological properties); all v2 formats store masked values.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace ndss

#endif  // NDSS_COMMON_CRC32C_H_
