#ifndef NDSS_COMMON_RANDOM_H_
#define NDSS_COMMON_RANDOM_H_

#include <cstdint>

namespace ndss {

/// SplitMix64 mixing step. A high-quality 64-bit finalizer; used both to
/// derive hash-function seeds and as the token hash itself.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** pseudo-random generator.
///
/// Deterministic given the seed; used everywhere randomness is needed so
/// experiments are reproducible run-to-run. Satisfies the requirements of a
/// C++ UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ndss

#endif  // NDSS_COMMON_RANDOM_H_
