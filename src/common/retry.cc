#include "common/retry.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/random.h"

namespace ndss {

namespace {

/// Per-call jitter seeds when the policy does not pin one: a counter mixed
/// through SplitMix64, so two concurrent RunWithRetry calls never share a
/// backoff schedule.
uint64_t NextJitterSeed() {
  static std::atomic<uint64_t> counter{0x7e7721e5};
  return SplitMix64(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError();
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, Env* env,
                    const QueryContext* ctx) {
  if (env == nullptr) env = GetDefaultEnv();
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  uint64_t backoff = policy.initial_backoff_micros;
  uint64_t slept = 0;
  Rng jitter(policy.jitter_seed != 0 ? policy.jitter_seed : NextJitterSeed());
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (ctx != nullptr) {
      // A deadline or cancellation that stops the retrying wins over the
      // last transient error: the operation had attempts left and only the
      // caller's limit ended them (the error itself was already logged
      // below).
      NDSS_RETURN_NOT_OK(ctx->Check());
    }
    status = op();
    if (status.ok() || !IsRetryableStatus(status)) return status;
    if (attempt == attempts) break;
    if (policy.decorrelated_jitter) {
      // backoff already holds the previous sleep (or the initial backoff);
      // draw the next one from [initial, prev * multiplier].
      const uint64_t base = policy.initial_backoff_micros;
      const uint64_t upper = std::max(
          base, static_cast<uint64_t>(static_cast<double>(backoff) *
                                      policy.backoff_multiplier));
      backoff = base + jitter.Uniform(upper - base + 1);
    }
    uint64_t sleep = backoff;
    if (policy.max_total_micros > 0) {
      if (slept >= policy.max_total_micros) break;
      sleep = std::min(sleep, policy.max_total_micros - slept);
    }
    if (ctx != nullptr) {
      const int64_t remaining = ctx->remaining_micros();
      if (remaining <= 0) return ctx->Check();
      sleep = std::min(sleep, static_cast<uint64_t>(remaining));
    }
    // A fault storm hits this line once per failed attempt per operation;
    // sample it so real signal survives chaos runs.
    NDSS_LOG_EVERY_SECONDS(kWarning, 1.0)
        << "retryable IO failure (attempt " << attempt << "/" << attempts
        << "): " << status.ToString();
    env->SleepMicros(sleep);
    slept += sleep;
    if (!policy.decorrelated_jitter) {
      backoff = static_cast<uint64_t>(static_cast<double>(backoff) *
                                      policy.backoff_multiplier);
    }
  }
  return status;
}

}  // namespace ndss
