#include "common/retry.h"

#include "common/logging.h"

namespace ndss {

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError();
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, Env* env) {
  if (env == nullptr) env = GetDefaultEnv();
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  uint64_t backoff = policy.initial_backoff_micros;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = op();
    if (status.ok() || !IsRetryableStatus(status)) return status;
    if (attempt == attempts) break;
    NDSS_LOG(kWarning) << "retryable IO failure (attempt " << attempt << "/"
                       << attempts << "): " << status.ToString();
    env->SleepMicros(backoff);
    backoff = static_cast<uint64_t>(static_cast<double>(backoff) *
                                    policy.backoff_multiplier);
  }
  return status;
}

}  // namespace ndss
