#include "common/retry.h"

#include <algorithm>

#include "common/logging.h"

namespace ndss {

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError();
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, Env* env,
                    const QueryContext* ctx) {
  if (env == nullptr) env = GetDefaultEnv();
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  uint64_t backoff = policy.initial_backoff_micros;
  uint64_t slept = 0;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (ctx != nullptr) {
      // A deadline or cancellation that stops the retrying wins over the
      // last transient error: the operation had attempts left and only the
      // caller's limit ended them (the error itself was already logged
      // below).
      NDSS_RETURN_NOT_OK(ctx->Check());
    }
    status = op();
    if (status.ok() || !IsRetryableStatus(status)) return status;
    if (attempt == attempts) break;
    uint64_t sleep = backoff;
    if (policy.max_total_micros > 0) {
      if (slept >= policy.max_total_micros) break;
      sleep = std::min(sleep, policy.max_total_micros - slept);
    }
    if (ctx != nullptr) {
      const int64_t remaining = ctx->remaining_micros();
      if (remaining <= 0) return ctx->Check();
      sleep = std::min(sleep, static_cast<uint64_t>(remaining));
    }
    NDSS_LOG(kWarning) << "retryable IO failure (attempt " << attempt << "/"
                       << attempts << "): " << status.ToString();
    env->SleepMicros(sleep);
    slept += sleep;
    backoff = static_cast<uint64_t>(static_cast<double>(backoff) *
                                    policy.backoff_multiplier);
  }
  return status;
}

}  // namespace ndss
