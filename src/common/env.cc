#include "common/env.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

namespace ndss {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t size) override {
    if (file_ == nullptr) return Status::IOError("file is closed: " + path_);
    if (std::fwrite(data, 1, size, file_) != size) {
      return Status::IOError(ErrnoMessage("write", path_));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::IOError("file is closed: " + path_);
    if (std::fflush(file_) != 0) {
      return Status::IOError(ErrnoMessage("flush", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    NDSS_RETURN_NOT_OK(Flush());
    if (::fsync(fileno(file_)) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IOError(ErrnoMessage("close", path_));
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::FILE* file, std::string path, uint64_t size)
      : file_(file), path_(std::move(path)), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Result<size_t> Read(void* out, size_t size) override {
    const size_t n = std::fread(out, 1, size, file_);
    if (n < size && std::ferror(file_)) {
      return Status::IOError(ErrnoMessage("read", path_));
    }
    return n;
  }

  Result<size_t> ReadAt(uint64_t offset, void* out, size_t size) override {
    // pread neither consults nor moves the stdio cursor, so positional reads
    // from many threads can share this handle with a sequential scanner.
    char* dst = static_cast<char*>(out);
    size_t total = 0;
    while (total < size) {
      const ssize_t n = ::pread(fileno(file_), dst + total, size - total,
                                static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread", path_));
      }
      if (n == 0) break;  // EOF
      total += static_cast<size_t>(n);
    }
    return total;
  }

  Status Seek(uint64_t offset) override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError(ErrnoMessage("seek", path_));
    }
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  std::FILE* file_;
  std::string path_;
  uint64_t size_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    std::FILE* file = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (file == nullptr) {
      return Status::IOError(
          ErrnoMessage(append ? "open for append" : "open for write", path));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(file, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path, size_t buffer_size) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::IOError(ErrnoMessage("open for read", path));
    }
    if (buffer_size > 0) {
      // stdio's own buffer provides read-ahead for sequential scans.
      std::setvbuf(file, nullptr, _IOFBF, buffer_size);
    }
    struct stat st;
    if (fstat(fileno(file), &st) != 0) {
      std::fclose(file);
      return Status::IOError(ErrnoMessage("stat", path));
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(
            file, path, static_cast<uint64_t>(st.st_size)));
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::NotFound("file_size '" + path + "': " + ec.message());
    }
    return size;
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) return Status::IOError("remove '" + path + "': " + ec.message());
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec) {
      return Status::IOError("truncate '" + path + "': " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveDirectory(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IOError("rmdir '" + path + "': " + ec.message());
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
      return Status::IOError("rename '" + from + "' -> '" + to +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  Status CreateDirectories(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IOError("create_directories '" + path +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(path, ec);
    if (ec) {
      return Status::IOError("list '" + path + "': " + ec.message());
    }
    std::vector<std::string> names;
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  void SleepMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

std::atomic<Env*>& DefaultEnvSlot() {
  static std::atomic<Env*> slot{nullptr};
  return slot;
}

}  // namespace

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

Env* GetDefaultEnv() {
  Env* env = DefaultEnvSlot().load(std::memory_order_acquire);
  return env != nullptr ? env : Env::Posix();
}

void SetDefaultEnv(Env* env) {
  DefaultEnvSlot().store(env, std::memory_order_release);
}

}  // namespace ndss
