#ifndef NDSS_COMMON_STOPWATCH_H_
#define NDSS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ndss {

/// Wall-clock stopwatch for timing experiment phases.
///
/// Starts on construction; `ElapsedSeconds()` can be read repeatedly and
/// `Restart()` resets the origin. Resolution is that of steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ndss

#endif  // NDSS_COMMON_STOPWATCH_H_
