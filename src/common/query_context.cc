#include "common/query_context.h"

#include <string>

namespace ndss {

Status MemoryBudget::Charge(uint64_t bytes) {
  if (bytes == 0) return Status::OK();
  uint64_t current = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (max_bytes_ != 0 && current + bytes > max_bytes_) {
      return Status::ResourceExhausted(
          "query memory budget exceeded: " + std::to_string(current) + " + " +
          std::to_string(bytes) + " > " + std::to_string(max_bytes_) +
          " bytes");
    }
    if (used_.compare_exchange_weak(current, current + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  if (parent_ != nullptr) {
    const Status parent = parent_->Charge(bytes);
    if (!parent.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return parent;
    }
  }
  // The peak is a best-effort high-water mark: under concurrent charges it
  // may briefly trail `used`, but it never reports a value that was not
  // actually reached.
  const uint64_t now_used = used_.load(std::memory_order_relaxed);
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now_used > peak &&
         !peak_.compare_exchange_weak(peak, now_used,
                                      std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

Status QueryContext::Check() const {
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace ndss
