#ifndef NDSS_COMMON_STATUS_H_
#define NDSS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ndss {

/// Error category for a failed operation.
///
/// The set mirrors the categories used by storage engines (RocksDB, Arrow):
/// a small closed enum that callers can branch on, plus a free-form message
/// for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "IOError").
std::string_view StatusCodeToString(StatusCode code);

/// The HTTP status an ndss_serve response carries for a request that ended
/// with `code`. The governance codes map onto the conventional overload
/// trio — ResourceExhausted (8) → 429 Too Many Requests, DeadlineExceeded
/// (9) → 504 Gateway Timeout, Cancelled (10) → 499 Client Closed Request
/// (nginx's convention) — so a load balancer can tell shed/overload from
/// breakage. Caller errors map to 400/404/416; everything else is a 500.
int HttpStatusForCode(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// The library does not throw exceptions on its regular control paths; every
/// fallible operation returns a `Status` (or a `Result<T>`, see result.h).
/// A `Status` is cheap to copy when OK (no allocation) and carries a message
/// only on failure.
///
/// Typical use:
///
///   Status s = writer.Append(data);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The failure message; empty when ok().
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace ndss

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status. The expression is evaluated exactly once.
#define NDSS_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::ndss::Status _ndss_status_ = (expr);         \
    if (!_ndss_status_.ok()) return _ndss_status_; \
  } while (0)

#endif  // NDSS_COMMON_STATUS_H_
