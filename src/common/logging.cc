#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ndss {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

std::ostream& operator<<(std::ostream& os, const Suppressed& suppressed) {
  if (suppressed.count > 0) {
    os << "[" << suppressed.count << " similar suppressed] ";
  }
  return os;
}

bool LogRateLimiter::ShouldLog(double interval_seconds, uint64_t* suppressed) {
  const int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  int64_t next = next_allowed_nanos_.load(std::memory_order_relaxed);
  if (now < next ||
      !next_allowed_nanos_.compare_exchange_strong(
          next, now + static_cast<int64_t>(interval_seconds * 1e9),
          std::memory_order_relaxed)) {
    // Either inside the quiet interval, or another thread won the slot.
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
  return true;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace ndss
