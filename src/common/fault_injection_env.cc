#include "common/fault_injection_env.h"

#include <algorithm>
#include <filesystem>

namespace ndss {

// The wrapper classes live at namespace scope (not in an anonymous
// namespace) so the friend declarations in the header apply.

/// Writer wrapper: counts operations, applies payload faults, and tracks
/// written/synced sizes in the owning env.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const void* data, size_t size) override {
    NDSS_RETURN_NOT_OK(env_->CountOp("append " + path_));
    bool corrupt = false;
    bool short_append = false;
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      corrupt = env_->corrupt_next_append_;
      env_->corrupt_next_append_ = false;
      short_append = env_->short_appends_;
    }
    if (short_append && size > 1) {
      const size_t half = size / 2;
      NDSS_RETURN_NOT_OK(base_->Append(data, half));
      Record(half);
      return Status::IOError("injected short write to " + path_);
    }
    if (corrupt && size > 0) {
      std::string mangled(static_cast<const char*>(data), size);
      mangled[mangled.size() / 2] ^= 0x40;
      NDSS_RETURN_NOT_OK(base_->Append(mangled.data(), mangled.size()));
      Record(size);
      return Status::OK();
    }
    NDSS_RETURN_NOT_OK(base_->Append(data, size));
    Record(size);
    return Status::OK();
  }

  Status Flush() override {
    NDSS_RETURN_NOT_OK(env_->CountOp("flush " + path_));
    return base_->Flush();
  }

  Status Sync() override {
    NDSS_RETURN_NOT_OK(env_->CountOp("sync " + path_));
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      if (env_->fail_fsync_) {
        // fsyncgate model: the fsync fails and the dirty pages it covered may
        // already be gone, so synced_size is deliberately NOT advanced — a
        // later DropUnsyncedData() discards everything since the last good
        // sync, which is what the caller must assume happened.
        ++env_->faults_injected_;
        return Status::IOError("injected fsync failure on " + path_);
      }
    }
    NDSS_RETURN_NOT_OK(base_->Sync());
    std::lock_guard<std::mutex> lock(env_->mu_);
    auto& state = env_->StateLocked(path_);
    state.synced_size = state.written_size;
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::OK();
    NDSS_RETURN_NOT_OK(env_->CountOp("close " + path_));
    closed_ = true;
    return base_->Close();
  }

 private:
  void Record(size_t appended) {
    std::lock_guard<std::mutex> lock(env_->mu_);
    env_->StateLocked(path_).written_size += appended;
  }

  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
  bool closed_ = false;
};

/// Reader wrapper: counts read and seek operations.
class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string path,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Result<size_t> Read(void* out, size_t size) override {
    NDSS_RETURN_NOT_OK(env_->CountOp("read " + path_));
    return base_->Read(out, ClampSize(size));
  }

  Result<size_t> ReadAt(uint64_t offset, void* out, size_t size) override {
    NDSS_RETURN_NOT_OK(env_->CountOp("pread " + path_));
    return base_->ReadAt(offset, out, ClampSize(size));
  }

  Status Seek(uint64_t offset) override {
    NDSS_RETURN_NOT_OK(env_->CountOp("seek " + path_));
    return base_->Seek(offset);
  }

  uint64_t size() const override { return base_->size(); }

 private:
  /// Under SetShortReads, deliver only half of each multi-byte request.
  size_t ClampSize(size_t size) const {
    std::lock_guard<std::mutex> lock(env_->mu_);
    return env_->short_reads_ && size > 1 ? size / 2 : size;
  }

  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

void FaultInjectionEnv::FailAtOp(int64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_op_ = op;
  crash_on_fault_ = false;
}

void FaultInjectionEnv::ArmCrashAtOp(int64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_op_ = op;
  crash_on_fault_ = true;
}

void FaultInjectionEnv::SetFailOnce(bool fail_once) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_once_ = fail_once;
}

void FaultInjectionEnv::SetFailProbability(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_probability_ = p;
  fault_rng_ = Rng(seed);
}

void FaultInjectionEnv::SetFaultPathFilter(std::string substring) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_path_filter_ = std::move(substring);
}

void FaultInjectionEnv::SetFaultBudget(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_budget_ = n;
}

void FaultInjectionEnv::CorruptNextAppend() {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_next_append_ = true;
}

void FaultInjectionEnv::SetShortAppends(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  short_appends_ = on;
}

void FaultInjectionEnv::SetShortReads(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  short_reads_ = on;
}

void FaultInjectionEnv::SetFailFsync(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_fsync_ = on;
}

void FaultInjectionEnv::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_op_ = -1;
  crash_on_fault_ = false;
  crashed_ = false;
  corrupt_next_append_ = false;
  short_appends_ = false;
  short_reads_ = false;
  fail_probability_ = 0.0;
  fault_path_filter_.clear();
  fault_budget_ = -1;
  fail_fsync_ = false;
}

void FaultInjectionEnv::ResetOpCount() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
}

int64_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

int64_t FaultInjectionEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultInjectionEnv::CountOp(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IOError("injected crash (env is down): " + what);
  }
  const int64_t op = op_count_++;
  const bool eligible =
      fault_budget_ != 0 &&
      (fault_path_filter_.empty() ||
       what.find(fault_path_filter_) != std::string::npos);
  bool fire = false;
  if (eligible && fail_at_op_ >= 0 && op == fail_at_op_) {
    fire = true;
    if (fail_once_) fail_at_op_ = -1;
  } else if (eligible && fail_probability_ > 0.0 &&
             fault_rng_.NextBool(fail_probability_)) {
    fire = true;
  }
  if (fire) {
    ++faults_injected_;
    if (crash_on_fault_) crashed_ = true;
    if (fault_budget_ > 0 && --fault_budget_ == 0) {
      // Burst exhausted: disarm everything so the next op succeeds.
      fail_at_op_ = -1;
      fail_probability_ = 0.0;
    }
    return Status::IOError("injected fault at op " + std::to_string(op) +
                           ": " + what);
  }
  return Status::OK();
}

FaultInjectionEnv::FileState& FaultInjectionEnv::StateLocked(
    const std::string& path) {
  return files_[path];
}

Status FaultInjectionEnv::DropUnsyncedData() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) continue;
    std::filesystem::resize_file(path, state.synced_size, ec);
    if (ec) {
      return Status::IOError("drop unsynced data of '" + path +
                             "': " + ec.message());
    }
    state.written_size = state.synced_size;
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool append) {
  NDSS_RETURN_NOT_OK(CountOp("open for write " + path));
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                        base_->NewWritableFile(path, append));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (!append) {
      // Truncating open: previous contents (synced or not) are gone.
      files_[path] = FileState{};
    } else if (it == files_.end()) {
      // Appending to a file this env has never written: treat pre-existing
      // bytes as durable.
      FileState state;
      auto size = base_->GetFileSize(path);
      state.written_size = state.synced_size = size.ok() ? *size : 0;
      files_[path] = state;
    }
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, std::move(base)));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path,
                                       size_t buffer_size) {
  NDSS_RETURN_NOT_OK(CountOp("open for read " + path));
  NDSS_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> base,
                        base_->NewRandomAccessFile(path, buffer_size));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(this, path, std::move(base)));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  NDSS_RETURN_NOT_OK(CountOp("remove " + path));
  NDSS_RETURN_NOT_OK(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  NDSS_RETURN_NOT_OK(CountOp("truncate " + path));
  NDSS_RETURN_NOT_OK(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    // A truncate is a metadata operation: model it as immediately durable
    // (like rename), so the crash model never resurrects the cut bytes.
    it->second.written_size = std::min(it->second.written_size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirectory(const std::string& path) {
  NDSS_RETURN_NOT_OK(CountOp("rmdir " + path));
  return base_->RemoveDirectory(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  NDSS_RETURN_NOT_OK(CountOp("rename " + from));
  NDSS_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirectories(const std::string& path) {
  NDSS_RETURN_NOT_OK(CountOp("mkdir " + path));
  return base_->CreateDirectories(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDirectory(
    const std::string& path) {
  NDSS_RETURN_NOT_OK(CountOp("list " + path));
  return base_->ListDirectory(path);
}

void FaultInjectionEnv::SleepMicros(uint64_t micros) {
  // Backoff delays are pointless against injected faults; return instantly
  // so retry sweeps stay fast.
  (void)micros;
}

}  // namespace ndss
