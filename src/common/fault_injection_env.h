#ifndef NDSS_COMMON_FAULT_INJECTION_ENV_H_
#define NDSS_COMMON_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/random.h"

namespace ndss {

/// An Env wrapper that injects faults into file operations (tests only).
///
/// Every file operation routed through this Env — appends, flushes, syncs,
/// closes, opens, reads, seeks, renames, removes — consumes one slot of a
/// global operation counter. Faults are programmed against that counter:
///
///   FaultInjectionEnv fault(Env::Posix());
///   SetDefaultEnv(&fault);
///   fault.FailAtOp(17);        // the 18th operation returns IOError
///   fault.ArmCrashAtOp(17);    // ...and every operation after it, too
///
/// Crash simulation follows the power-loss model: the env tracks, per file,
/// how many bytes have been made durable by Sync(). DropUnsyncedData()
/// truncates every tracked file back to its last synced size — exactly what
/// the file system may do when the machine dies — so a test can sweep a
/// crash point across a whole index build and assert that reopening either
/// fails cleanly or serves a complete index. Call DropUnsyncedData() only
/// after all writers have been destroyed.
///
/// Additional knobs: CorruptNextAppend() flips one bit of the next appended
/// payload (checksum coverage tests); SetShortAppends() makes appends
/// persist only half of each payload before failing (torn writes);
/// SetFailOnce() disarms an injected fault after it fires (retry tests).
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // ---- fault programming ----

  /// Fails the operation with 0-based index `op` (relative to the counter's
  /// last reset). Negative disarms.
  void FailAtOp(int64_t op);

  /// Like FailAtOp, but the env stays failed afterwards (as if the process
  /// died at that operation): every subsequent operation returns IOError
  /// until Heal().
  void ArmCrashAtOp(int64_t op);

  /// When set, an injected failure disarms itself after firing once, so the
  /// next attempt succeeds (models a transient fault for retry tests).
  void SetFailOnce(bool fail_once);

  // ---- fault schedules (chaos harness) ----
  //
  // The chaos_test driver composes these three knobs into scripted
  // schedules: a *storm* is a nonzero probability with no budget, a *burst*
  // is probability 1.0 with a small budget, and *clear-after-T* is the
  // driver calling Heal() after a timed phase. All three are seeded /
  // deterministic so a failing schedule replays bit-identically.

  /// Every eligible operation fails with probability `p` (0 disarms),
  /// drawn from an RNG seeded with `seed` — the same seed replays the same
  /// fault sequence for the same operation stream. Composes with
  /// SetFaultPathFilter and SetFaultBudget.
  void SetFailProbability(double p, uint64_t seed = 0x57081);

  /// Restricts injected faults (FailAtOp and SetFailProbability) to
  /// operations whose description contains `substring` — e.g. one shard's
  /// directory, so a storm darkens that shard while the rest serve.
  /// Every operation still advances the op counter. Empty = no filter.
  void SetFaultPathFilter(std::string substring);

  /// At most `n` more faults fire; when the budget hits zero all fault
  /// programming disarms (a bounded burst). Negative = unlimited.
  void SetFaultBudget(int64_t n);

  /// Flips one bit in the payload of the next Append that goes through.
  void CorruptNextAppend();

  /// When set, every Append persists only the first half of its payload and
  /// then reports IOError (a torn write).
  void SetShortAppends(bool on);

  /// When set, every Read/ReadAt returns only the first half of the
  /// requested bytes (a short read, as a signal-interrupted or truncated
  /// pread would). The caller's short-read detection turns it into IOError.
  void SetShortReads(bool on);

  /// When set, every Sync() fails with IOError *without* marking the file's
  /// bytes durable — the fsyncgate model, where a failed fsync may already
  /// have dropped the dirty pages, so a later "successful" fsync proves
  /// nothing. Callers must treat the error as possible data loss (fail the
  /// write path loudly, never retry the fsync on the same fd); a subsequent
  /// DropUnsyncedData() discards exactly what a correct caller must assume
  /// is gone.
  void SetFailFsync(bool on);

  /// Disarms all faults and clears the crashed state. Data already dropped
  /// stays dropped.
  void Heal();

  /// Resets the operation counter to zero (faults are interpreted against
  /// the new numbering).
  void ResetOpCount();

  int64_t op_count() const;
  int64_t faults_injected() const;
  bool crashed() const;

  /// Truncates every file written through this env back to its last-synced
  /// size (zero for never-synced files), simulating the loss of all
  /// non-durable data in a crash. Files merely renamed keep their tracked
  /// state. Must not race with open writers on the same files.
  Status DropUnsyncedData();

  // ---- Env interface ----

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path, size_t buffer_size) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status RemoveDirectory(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirectories(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
  void SleepMicros(uint64_t micros) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  struct FileState {
    uint64_t written_size = 0;  // bytes the writer believes are on disk
    uint64_t synced_size = 0;   // bytes guaranteed durable
  };

  /// Accounts one operation; returns the injected error if this operation is
  /// the armed one (or the env has crashed).
  Status CountOp(const std::string& what);

  /// Called by writer wrappers with the lock held.
  FileState& StateLocked(const std::string& path);

  Env* const base_;
  mutable std::mutex mu_;
  int64_t op_count_ = 0;
  int64_t fail_at_op_ = -1;
  int64_t faults_injected_ = 0;
  bool crash_on_fault_ = false;
  bool fail_once_ = false;
  bool crashed_ = false;
  bool corrupt_next_append_ = false;
  bool short_appends_ = false;
  bool short_reads_ = false;
  bool fail_fsync_ = false;
  double fail_probability_ = 0.0;
  Rng fault_rng_{0x57081};
  std::string fault_path_filter_;
  int64_t fault_budget_ = -1;  ///< faults left to fire; negative = unlimited
  std::unordered_map<std::string, FileState> files_;
};

}  // namespace ndss

#endif  // NDSS_COMMON_FAULT_INJECTION_ENV_H_
