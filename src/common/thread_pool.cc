#include "common/thread_pool.h"

#include <algorithm>

namespace ndss {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::max<size_t>(1, std::min(num_threads, n));
  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t chunk = (n + num_threads - 1) / num_threads;
  for (size_t th = 0; th < num_threads; ++th) {
    const size_t begin = th * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace ndss
