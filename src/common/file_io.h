#ifndef NDSS_COMMON_FILE_IO_H_
#define NDSS_COMMON_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ndss {

/// Sequential buffered writer over a file, used for index and corpus files.
///
/// All writes go through an in-memory buffer (default 1 MiB) and are flushed
/// on demand or at Close(). Not thread-safe. Move-only.
class FileWriter {
 public:
  /// Creates (truncates) `path` for writing.
  static Result<FileWriter> Open(const std::string& path,
                                 size_t buffer_size = 1 << 20);

  /// Opens `path` for appending, creating it if absent. `bytes_written()`
  /// counts only bytes appended through this writer.
  static Result<FileWriter> OpenForAppend(const std::string& path,
                                          size_t buffer_size = 1 << 20);

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  ~FileWriter();

  /// Appends `size` bytes from `data`.
  Status Append(const void* data, size_t size);

  /// Appends the bytes of `data`.
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// Appends a little-endian 32-bit integer.
  Status AppendU32(uint32_t value);

  /// Appends a little-endian 64-bit integer.
  Status AppendU64(uint64_t value);

  /// Total bytes appended so far (buffered or not).
  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes the buffer to the OS.
  Status Flush();

  /// Flushes and closes the file. Idempotent. Must be called (and checked)
  /// before destruction for durability; the destructor closes silently.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  FileWriter(std::FILE* file, std::string path, size_t buffer_size);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string buffer_;
  size_t buffer_capacity_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Sequential/positional buffered reader over a file.
///
/// Supports both streaming reads and absolute-offset reads (used by the query
/// path to fetch one inverted list or one zone-map region). Not thread-safe.
/// Move-only.
class FileReader {
 public:
  /// Opens `path` for reading.
  static Result<FileReader> Open(const std::string& path,
                                 size_t buffer_size = 1 << 20);

  FileReader(FileReader&& other) noexcept;
  FileReader& operator=(FileReader&& other) noexcept;
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;
  ~FileReader();

  /// Reads exactly `size` bytes into `out`; fails with IOError on short read.
  Status ReadExact(void* out, size_t size);

  /// Reads up to `size` bytes; returns the number of bytes read (0 at EOF).
  Result<size_t> Read(void* out, size_t size);

  /// Reads exactly `size` bytes at absolute offset `offset` without
  /// disturbing the current stream position semantics for future ReadAt
  /// calls (sequential Read* continue from offset+size).
  Status ReadAt(uint64_t offset, void* out, size_t size);

  /// Reads a little-endian 32-bit integer.
  Result<uint32_t> ReadU32();

  /// Reads a little-endian 64-bit integer.
  Result<uint64_t> ReadU64();

  /// Repositions the stream to absolute `offset`.
  Status Seek(uint64_t offset);

  /// File size in bytes.
  uint64_t size() const { return file_size_; }

  /// Current absolute stream position.
  uint64_t position() const { return position_; }

  /// Total bytes physically read from the file so far (an IO-cost counter
  /// used by the experiments to split IO vs CPU time).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  FileReader(std::FILE* file, std::string path, uint64_t file_size);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t file_size_ = 0;
  uint64_t position_ = 0;
  uint64_t bytes_read_ = 0;
};

/// Returns true if `path` exists.
bool FileExists(const std::string& path);

/// Returns the size of `path` in bytes, or NotFound.
Result<uint64_t> FileSize(const std::string& path);

/// Deletes `path` if it exists; OK if it does not.
Status RemoveFile(const std::string& path);

/// Creates directory `path` (and parents); OK if it already exists.
Status CreateDirectories(const std::string& path);

/// Reads the whole of `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing contents.
Status WriteStringToFile(const std::string& path, const std::string& data);

}  // namespace ndss

#endif  // NDSS_COMMON_FILE_IO_H_
