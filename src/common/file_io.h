#ifndef NDSS_COMMON_FILE_IO_H_
#define NDSS_COMMON_FILE_IO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/status.h"

namespace ndss {

/// Sequential buffered writer over a file, used for index and corpus files.
///
/// All writes go through an in-memory buffer (default 1 MiB) and are flushed
/// on demand or at Close(). The underlying file handle comes from an Env
/// (GetDefaultEnv() unless one is passed), so tests can inject faults into
/// any operation. Not thread-safe. Move-only.
class FileWriter {
 public:
  /// Creates (truncates) `path` for writing.
  static Result<FileWriter> Open(const std::string& path,
                                 size_t buffer_size = 1 << 20,
                                 Env* env = nullptr);

  /// Opens `path` for appending, creating it if absent. `bytes_written()`
  /// counts only bytes appended through this writer.
  static Result<FileWriter> OpenForAppend(const std::string& path,
                                          size_t buffer_size = 1 << 20,
                                          Env* env = nullptr);

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  ~FileWriter();

  /// Appends `size` bytes from `data`.
  Status Append(const void* data, size_t size);

  /// Appends the bytes of `data`.
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// Appends a little-endian 32-bit integer.
  Status AppendU32(uint32_t value);

  /// Appends a little-endian 64-bit integer.
  Status AppendU64(uint64_t value);

  /// Total bytes appended so far (buffered or not).
  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes the buffer to the OS.
  Status Flush();

  /// Flushes and makes every appended byte durable (fsync). Data not synced
  /// may be lost if the machine crashes, even after Close().
  Status Sync();

  /// Flushes and closes the file. Idempotent. Must be called (and checked)
  /// before destruction; an implicit destructor-path close logs a warning
  /// because its errors — and possibly the data — are silently dropped.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

  const std::string& path() const { return path_; }

 private:
  FileWriter(std::unique_ptr<WritableFile> file, std::string path,
             size_t buffer_size);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  std::string buffer_;
  size_t buffer_capacity_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Sequential/positional buffered reader over a file.
///
/// Supports both streaming reads and absolute-offset reads (used by the query
/// path to fetch one inverted list or one zone-map region). Backed by an Env
/// file handle.
///
/// Thread-safety: ReadAt is positional (pread-style), keeps no stream state,
/// and may be called from any number of threads concurrently. The streaming
/// interface (Read*, Seek, position) carries cursor state and must stay on
/// one thread at a time. Move-only; moving must not race with reads.
class FileReader {
 public:
  /// Opens `path` for reading.
  static Result<FileReader> Open(const std::string& path,
                                 size_t buffer_size = 1 << 20,
                                 Env* env = nullptr);

  FileReader(FileReader&& other) noexcept;
  FileReader& operator=(FileReader&& other) noexcept;
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;
  ~FileReader() = default;

  /// Reads exactly `size` bytes into `out`; fails with IOError on short read.
  Status ReadExact(void* out, size_t size);

  /// Reads up to `size` bytes; returns the number of bytes read (0 at EOF).
  Result<size_t> Read(void* out, size_t size);

  /// Reads exactly `size` bytes at absolute offset `offset`. Does not touch
  /// the streaming cursor; safe to call concurrently from many threads.
  Status ReadAt(uint64_t offset, void* out, size_t size);

  /// Reads a little-endian 32-bit integer.
  Result<uint32_t> ReadU32();

  /// Reads a little-endian 64-bit integer.
  Result<uint64_t> ReadU64();

  /// Repositions the stream to absolute `offset`.
  Status Seek(uint64_t offset);

  /// File size in bytes.
  uint64_t size() const { return file_size_; }

  /// Current absolute stream position.
  uint64_t position() const { return position_; }

  /// Total bytes physically read from the file so far (an IO-cost counter
  /// used by the experiments to split IO vs CPU time). Atomic so concurrent
  /// ReadAt callers can account without a lock.
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  FileReader(std::unique_ptr<RandomAccessFile> file, std::string path,
             uint64_t file_size);

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  uint64_t file_size_ = 0;
  uint64_t position_ = 0;
  std::atomic<uint64_t> bytes_read_{0};
};

/// Returns true if `path` exists.
bool FileExists(const std::string& path);

/// Returns the size of `path` in bytes, or NotFound.
Result<uint64_t> FileSize(const std::string& path);

/// Deletes `path` if it exists; OK if it does not.
Status RemoveFile(const std::string& path);

/// Truncates `path` to exactly `size` bytes (see Env::TruncateFile).
Status TruncateFile(const std::string& path, uint64_t size);

/// Removes the directory `path` and everything inside it, through the
/// default Env (one level of nesting only — NDSS shard directories are
/// flat). OK if `path` does not exist.
Status RemoveDirRecursive(const std::string& path);

/// Atomically renames `from` to `to`, replacing `to` if it exists.
Status RenameFile(const std::string& from, const std::string& to);

/// Creates directory `path` (and parents); OK if it already exists.
Status CreateDirectories(const std::string& path);

/// Names (not paths) of the entries of directory `path`.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

/// Reads the whole of `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing contents. Not atomic and
/// not durable; use WriteStringToFileAtomic for commit points.
Status WriteStringToFile(const std::string& path, const std::string& data);

/// Durably replaces `path` with `data`: writes `path`.tmp, fsyncs, then
/// renames over `path`. After it returns OK, a crash leaves either the old
/// or the new contents, never a mixture.
Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& data);

}  // namespace ndss

#endif  // NDSS_COMMON_FILE_IO_H_
