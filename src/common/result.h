#ifndef NDSS_COMMON_RESULT_H_
#define NDSS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ndss {

/// Result of a fallible operation that produces a value of type `T`.
///
/// Holds either an OK status and a value, or a non-OK status and no value.
/// Mirrors `arrow::Result` / `absl::StatusOr`.
///
///   Result<Corpus> r = Corpus::Load(path);
///   if (!r.ok()) return r.status();
///   Corpus corpus = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT: implicit by design, mirrors StatusOr
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT: implicit by design, mirrors StatusOr
      : status_(Status::OK()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// The held value. Must not be called when !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this result failed.
  T value_or(T alternative) const& {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ndss

/// Assigns the value of a Result expression to `lhs`, propagating failure.
/// `lhs` may include a declaration, e.g.
///   NDSS_ASSIGN_OR_RETURN(auto corpus, Corpus::Load(path));
#define NDSS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  NDSS_ASSIGN_OR_RETURN_IMPL_(                            \
      NDSS_RESULT_CONCAT_(_ndss_result_, __LINE__), lhs, rexpr)

#define NDSS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define NDSS_RESULT_CONCAT_(a, b) NDSS_RESULT_CONCAT_IMPL_(a, b)
#define NDSS_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // NDSS_COMMON_RESULT_H_
