#ifndef NDSS_COMMON_CODING_H_
#define NDSS_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace ndss {

/// Fixed-width little-endian integer codecs used by all on-disk formats.
/// Little-endian is the native order on every platform we target; memcpy
/// keeps the accesses alignment-safe and lets the compiler emit single loads.

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

/// Appends the little-endian encoding of `value` to `dst`.
inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Appends the little-endian encoding of `value` to `dst`.
inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Maximum encoded size of a 32-bit / 64-bit varint.
inline constexpr size_t kMaxVarint32Bytes = 5;
inline constexpr size_t kMaxVarint64Bytes = 10;

/// Appends `value` as a LEB128 varint (7 bits per byte, high bit =
/// continuation). Used by the compressed posting-list format.
inline void PutVarint32(std::string* dst, uint32_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

/// Appends `value` as a 64-bit varint.
inline void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

/// Decodes a 32-bit varint from [p, limit). Returns the position after the
/// varint, or nullptr on truncated/overlong input.
inline const char* GetVarint32(const char* p, const char* limit,
                               uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    const uint32_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

/// Decodes a 32-bit varint WITHOUT bounds checks: the caller must guarantee
/// at least kMaxVarint32Bytes readable bytes at `p` (block decoders do this
/// with one range check per block instead of four per window). Unrolled
/// with a one-byte fast path — most posting deltas fit in one byte. Returns
/// nullptr on overlong input (a fifth byte with the continuation bit set),
/// exactly the inputs the checked decoder rejects when the buffer is ample;
/// high bits that overflow 32 bits in the fifth byte are truncated the same
/// way the checked decoder truncates them.
inline const char* GetVarint32Unchecked(const char* p, uint32_t* value) {
  uint32_t byte = static_cast<uint8_t>(*p++);
  if ((byte & 0x80) == 0) {
    *value = byte;
    return p;
  }
  uint32_t result = byte & 0x7f;
  byte = static_cast<uint8_t>(*p++);
  if ((byte & 0x80) == 0) {
    *value = result | (byte << 7);
    return p;
  }
  result |= (byte & 0x7f) << 7;
  byte = static_cast<uint8_t>(*p++);
  if ((byte & 0x80) == 0) {
    *value = result | (byte << 14);
    return p;
  }
  result |= (byte & 0x7f) << 14;
  byte = static_cast<uint8_t>(*p++);
  if ((byte & 0x80) == 0) {
    *value = result | (byte << 21);
    return p;
  }
  result |= (byte & 0x7f) << 21;
  byte = static_cast<uint8_t>(*p++);
  if ((byte & 0x80) != 0) return nullptr;  // overlong: > kMaxVarint32Bytes
  *value = result | (byte << 28);
  return p;
}

/// Decodes a 64-bit varint from [p, limit).
inline const char* GetVarint64(const char* p, const char* limit,
                               uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    const uint64_t byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

}  // namespace ndss

#endif  // NDSS_COMMON_CODING_H_
