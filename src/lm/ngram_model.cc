#include "lm/ngram_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ndss {

NGramModel::NGramModel(uint32_t order) : order_(order) {
  NDSS_CHECK(order_ >= 1) << "n-gram order must be >= 1";
  context_maps_.resize(order_);  // index 0 unused (unigrams_)
}

uint64_t NGramModel::ContextKey(std::span<const Token> context) {
  uint64_t key = 0xcbf29ce484222325ULL;
  for (Token token : context) {
    key = SplitMix64(key ^ token);
  }
  return key;
}

void NGramModel::Train(const Corpus& corpus) {
  for (size_t i = 0; i < corpus.num_texts(); ++i) {
    TrainText(corpus.text(i));
  }
}

void NGramModel::TrainText(std::span<const Token> text) {
  const size_t n = text.size();
  total_tokens_ += n;
  for (size_t i = 0; i < n; ++i) {
    ++unigrams_[text[i]];
    for (uint32_t len = 1; len < order_ && len <= i; ++len) {
      const std::span<const Token> context = text.subspan(i - len, len);
      ++context_maps_[len][ContextKey(context)][text[i]];
    }
  }
}

Token NGramModel::SampleFrom(const NextCounts& counts,
                             const SamplingOptions& options, Rng& rng) const {
  NDSS_CHECK(!counts.empty());
  // Materialize and sort by count descending (ties by token id for
  // determinism) so greedy / top-k / top-p all reduce to a prefix.
  std::vector<std::pair<Token, uint32_t>> items(counts.begin(), counts.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (options.greedy) return items[0].first;
  size_t limit = items.size();
  if (options.top_k > 0) limit = std::min<size_t>(limit, options.top_k);
  if (options.top_p > 0.0) {
    uint64_t total = 0;
    for (const auto& [token, count] : items) total += count;
    uint64_t cumulative = 0;
    size_t p_limit = 0;
    while (p_limit < items.size() &&
           static_cast<double>(cumulative) < options.top_p * total) {
      cumulative += items[p_limit].second;
      ++p_limit;
    }
    limit = std::min(limit, std::max<size_t>(1, p_limit));
  }
  uint64_t total = 0;
  for (size_t i = 0; i < limit; ++i) total += items[i].second;
  uint64_t draw = rng.Uniform(total);
  for (size_t i = 0; i < limit; ++i) {
    if (draw < items[i].second) return items[i].first;
    draw -= items[i].second;
  }
  return items[limit - 1].first;
}

Token NGramModel::SampleNext(std::span<const Token> context,
                             const SamplingOptions& options, Rng& rng) const {
  // Back off from the longest usable context to unigrams.
  const uint32_t max_len = std::min<uint32_t>(
      order_ - 1, static_cast<uint32_t>(context.size()));
  for (uint32_t len = max_len; len >= 1; --len) {
    const std::span<const Token> suffix =
        context.subspan(context.size() - len, len);
    auto it = context_maps_[len].find(ContextKey(suffix));
    if (it != context_maps_[len].end() && !it->second.empty()) {
      return SampleFrom(it->second, options, rng);
    }
  }
  NDSS_CHECK(!unigrams_.empty()) << "model was not trained";
  return SampleFrom(unigrams_, options, rng);
}

std::vector<Token> NGramModel::Generate(uint32_t length,
                                        const SamplingOptions& options,
                                        Rng& rng) const {
  std::vector<Token> text;
  text.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    text.push_back(SampleNext(text, options, rng));
  }
  return text;
}

std::vector<std::pair<Token, double>> NGramModel::TopCandidates(
    std::span<const Token> context, size_t n) const {
  const NextCounts* counts = &unigrams_;
  const uint32_t max_len = std::min<uint32_t>(
      order_ - 1, static_cast<uint32_t>(context.size()));
  for (uint32_t len = max_len; len >= 1; --len) {
    const std::span<const Token> suffix =
        context.subspan(context.size() - len, len);
    auto it = context_maps_[len].find(ContextKey(suffix));
    if (it != context_maps_[len].end() && !it->second.empty()) {
      counts = &it->second;
      break;
    }
  }
  NDSS_CHECK(!counts->empty()) << "model was not trained";
  std::vector<std::pair<Token, uint32_t>> items(counts->begin(),
                                                counts->end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  uint64_t total = 0;
  for (const auto& [token, count] : *counts) total += count;
  std::vector<std::pair<Token, double>> candidates;
  candidates.reserve(std::min(n, items.size()));
  for (size_t i = 0; i < items.size() && i < n; ++i) {
    candidates.push_back(
        {items[i].first, static_cast<double>(items[i].second) / total});
  }
  return candidates;
}

std::vector<Token> NGramModel::GenerateBeam(uint32_t length,
                                            uint32_t beam_width) const {
  NDSS_CHECK(beam_width >= 1);
  struct Beam {
    std::vector<Token> tokens;
    double log_prob = 0.0;
  };
  std::vector<Beam> beams(1);
  std::vector<Beam> expanded;
  for (uint32_t step = 0; step < length; ++step) {
    expanded.clear();
    for (const Beam& beam : beams) {
      // Expanding with the top beam_width candidates per beam suffices:
      // a lower candidate could never enter the kept set ahead of one of
      // these from the same parent.
      for (const auto& [token, prob] :
           TopCandidates(beam.tokens, beam_width)) {
        Beam next = beam;
        next.tokens.push_back(token);
        next.log_prob += std::log(prob);
        expanded.push_back(std::move(next));
      }
    }
    const size_t keep = std::min<size_t>(beam_width, expanded.size());
    std::partial_sort(expanded.begin(), expanded.begin() + keep,
                      expanded.end(), [](const Beam& a, const Beam& b) {
                        return a.log_prob > b.log_prob;
                      });
    expanded.resize(keep);
    beams.swap(expanded);
  }
  return std::move(beams.front().tokens);
}

}  // namespace ndss
