#ifndef NDSS_LM_MEMORIZING_GENERATOR_H_
#define NDSS_LM_MEMORIZING_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "lm/ngram_model.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Memorization behaviour of one simulated language model.
///
/// Real LLMs emit training spans verbatim or near-verbatim at rates that
/// grow with model capacity (Section 5; Lee et al. 2022). The simulator
/// makes that behaviour explicit: while generating, with probability
/// `copy_start_prob` per token it switches to copying a random training
/// span; each copied token is corrupted with probability `1 - fidelity`,
/// producing near- rather than exact duplicates. Because the planted spans
/// are recorded, the evaluation harness can be validated against ground
/// truth — something impossible with a real opaque model.
struct MemorizationProfile {
  /// Per-token probability of beginning a copied span.
  double copy_start_prob = 0.01;

  /// Copied span length is uniform in [min_copy_length, max_copy_length].
  uint32_t min_copy_length = 40;
  uint32_t max_copy_length = 120;

  /// Probability that a copied token is emitted unchanged.
  double fidelity = 0.97;
};

/// A simulated model: a name (mirroring the paper's four models) plus its
/// memorization profile.
struct SimulatedModel {
  std::string name;
  MemorizationProfile profile;
};

/// The four simulated models of the Section 5 reproduction. Capacities are
/// ordered like the paper's findings: GPT-Neo-2.7B > GPT-Neo-1.3B, and the
/// GPT-2 small model memorizes slightly *more* than the medium one (the
/// anomaly the paper reports in Figure 4(a)).
std::vector<SimulatedModel> DefaultSimulatedModels();

/// A copied (memorized) span planted into a generated text: ground truth
/// for the memorization evaluation.
struct CopiedSpan {
  uint32_t text_index;    ///< which generated text
  uint32_t target_begin;  ///< where in the generated text
  TextId source_text;     ///< training-corpus text copied from
  uint32_t source_begin;
  uint32_t length;
  uint32_t corrupted;  ///< tokens altered during the copy
};

/// Output of one generation run.
struct GeneratedTexts {
  std::vector<std::vector<Token>> texts;
  std::vector<CopiedSpan> copies;
};

/// Generates texts from an n-gram model while injecting memorized training
/// spans per `profile`. `corpus` must be the model's training corpus and
/// must outlive the generator.
class MemorizingGenerator {
 public:
  MemorizingGenerator(const NGramModel& model, const Corpus& corpus,
                      MemorizationProfile profile, uint64_t seed);

  /// Generates `num_texts` texts of `text_length` tokens each (the paper
  /// generates >= 512-token texts with top-50 sampling, no prompt).
  GeneratedTexts Generate(uint32_t num_texts, uint32_t text_length,
                          const SamplingOptions& sampling);

 private:
  const NGramModel& model_;
  const Corpus& corpus_;
  MemorizationProfile profile_;
  Rng rng_;
};

}  // namespace ndss

#endif  // NDSS_LM_MEMORIZING_GENERATOR_H_
