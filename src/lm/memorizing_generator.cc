#include "lm/memorizing_generator.h"

#include <algorithm>

#include "common/logging.h"

namespace ndss {

std::vector<SimulatedModel> DefaultSimulatedModels() {
  // Copy-start probabilities set so the measured memorization ratios order
  // like Figure 4: gpt-neo-2.7b-sim > gpt-neo-1.3b-sim, and the GPT-2
  // small model slightly above the medium one (the paper's anomaly).
  return {
      {"gpt2-small-sim", {0.0060, 40, 120, 0.97}},
      {"gpt2-medium-sim", {0.0045, 40, 120, 0.97}},
      {"gpt-neo-1.3b-sim", {0.0080, 40, 120, 0.97}},
      {"gpt-neo-2.7b-sim", {0.0130, 40, 120, 0.97}},
  };
}

MemorizingGenerator::MemorizingGenerator(const NGramModel& model,
                                         const Corpus& corpus,
                                         MemorizationProfile profile,
                                         uint64_t seed)
    : model_(model), corpus_(corpus), profile_(profile), rng_(seed) {
  NDSS_CHECK(corpus_.num_texts() > 0) << "training corpus is empty";
  NDSS_CHECK(profile_.min_copy_length >= 1 &&
             profile_.min_copy_length <= profile_.max_copy_length);
}

GeneratedTexts MemorizingGenerator::Generate(
    uint32_t num_texts, uint32_t text_length,
    const SamplingOptions& sampling) {
  GeneratedTexts result;
  result.texts.reserve(num_texts);
  for (uint32_t index = 0; index < num_texts; ++index) {
    std::vector<Token> text;
    text.reserve(text_length);
    while (text.size() < text_length) {
      if (rng_.NextBool(profile_.copy_start_prob)) {
        // Begin a memorized span: pick a training text and span.
        const TextId source =
            static_cast<TextId>(rng_.Uniform(corpus_.num_texts()));
        const std::span<const Token> source_text = corpus_.text(source);
        uint32_t length =
            profile_.min_copy_length +
            static_cast<uint32_t>(rng_.Uniform(profile_.max_copy_length -
                                               profile_.min_copy_length + 1));
        length = std::min<uint32_t>(
            length, static_cast<uint32_t>(text_length - text.size()));
        length = std::min<uint32_t>(
            length, static_cast<uint32_t>(source_text.size()));
        if (length < 2) continue;
        const uint32_t source_begin = static_cast<uint32_t>(
            rng_.Uniform(source_text.size() - length + 1));
        const uint32_t target_begin = static_cast<uint32_t>(text.size());
        uint32_t corrupted = 0;
        for (uint32_t i = 0; i < length; ++i) {
          if (rng_.NextBool(1.0 - profile_.fidelity)) {
            // Corrupt: substitute a model-sampled token.
            text.push_back(model_.SampleNext(text, sampling, rng_));
            ++corrupted;
          } else {
            text.push_back(source_text[source_begin + i]);
          }
        }
        result.copies.push_back(CopiedSpan{index, target_begin, source,
                                           source_begin, length, corrupted});
      } else {
        text.push_back(model_.SampleNext(text, sampling, rng_));
      }
    }
    result.texts.push_back(std::move(text));
  }
  return result;
}

}  // namespace ndss
