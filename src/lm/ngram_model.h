#ifndef NDSS_LM_NGRAM_MODEL_H_
#define NDSS_LM_NGRAM_MODEL_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

/// Token-sampling strategy (Section 2 of the paper: random sampling, greedy,
/// top-k, top-p).
struct SamplingOptions {
  /// 0 = sample from the full distribution; otherwise restrict to the k
  /// most probable next tokens (the paper's experiments use top-50).
  uint32_t top_k = 50;

  /// 0 = off; otherwise restrict to the smallest set of most probable
  /// tokens whose cumulative probability reaches top_p.
  double top_p = 0.0;

  /// Greedy decoding: always take the most probable next token.
  bool greedy = false;
};

/// Backoff n-gram language model over token sequences.
///
/// Stand-in for the GPT-2/GPT-Neo text generators of Section 5 (see
/// DESIGN.md §4): the memorization evaluation needs a generator whose output
/// is distributed like the training corpus; an order-`order` model with
/// backoff to shorter contexts provides exactly that at CPU scale.
class NGramModel {
 public:
  /// Model conditioning on up to `order - 1` previous tokens; order >= 1.
  explicit NGramModel(uint32_t order = 3);

  /// Accumulates counts from every text of `corpus`.
  void Train(const Corpus& corpus);

  /// Accumulates counts from one token sequence.
  void TrainText(std::span<const Token> text);

  /// Samples the next token given `context` (the most recent tokens; only
  /// the last order-1 are used), backing off to shorter contexts (and
  /// finally the unigram distribution) when a context was never seen.
  Token SampleNext(std::span<const Token> context,
                   const SamplingOptions& options, Rng& rng) const;

  /// Generates `length` tokens starting from an empty context (unprompted
  /// generation, as in the paper's memorization study).
  std::vector<Token> Generate(uint32_t length, const SamplingOptions& options,
                              Rng& rng) const;

  /// The `n` most probable next tokens for `context` with their backoff
  /// probabilities (sorted descending; ties by token id).
  std::vector<std::pair<Token, double>> TopCandidates(
      std::span<const Token> context, size_t n) const;

  /// Deterministic beam-search generation (the remaining strategy from the
  /// paper's Section 2): keeps the `beam_width` highest-log-probability
  /// prefixes, expanding each with its top candidates, and returns the best
  /// final sequence. Prefers globally probable sequences over greedy's
  /// locally probable tokens.
  std::vector<Token> GenerateBeam(uint32_t length, uint32_t beam_width) const;

  uint32_t order() const { return order_; }
  uint64_t total_tokens_trained() const { return total_tokens_; }

 private:
  /// Sparse distribution: next-token counts for one context.
  using NextCounts = std::unordered_map<Token, uint32_t>;

  /// Hash of a context (token window); contexts of different lengths live
  /// in different maps so no length tagging is needed.
  static uint64_t ContextKey(std::span<const Token> context);

  Token SampleFrom(const NextCounts& counts, const SamplingOptions& options,
                   Rng& rng) const;

  uint32_t order_;
  /// context_maps_[len] holds contexts of exactly `len` tokens,
  /// len in [1, order-1]. Unigram counts live in unigrams_.
  std::vector<std::unordered_map<uint64_t, NextCounts>> context_maps_;
  NextCounts unigrams_;
  uint64_t total_tokens_ = 0;
};

}  // namespace ndss

#endif  // NDSS_LM_NGRAM_MODEL_H_
