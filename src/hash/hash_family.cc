#include "hash/hash_family.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace ndss {

HashFamily::HashFamily(uint32_t k, uint64_t seed) : seed_(seed) {
  NDSS_CHECK(k >= 1) << "hash family needs at least one function";
  seeds_.reserve(k);
  uint64_t x = seed;
  for (uint32_t i = 0; i < k; ++i) {
    x = SplitMix64(x + i);
    seeds_.push_back(x);
  }
}

MinHashSketch ComputeSketch(const HashFamily& family, const Token* tokens,
                            size_t n) {
  NDSS_CHECK(n >= 1) << "cannot sketch an empty sequence";
  MinHashSketch sketch;
  const uint32_t k = family.k();
  sketch.argmin_tokens.resize(k);
  sketch.min_hashes.resize(k);
  for (uint32_t f = 0; f < k; ++f) {
    uint64_t best_hash = family.Hash(f, tokens[0]);
    Token best_token = tokens[0];
    for (size_t i = 1; i < n; ++i) {
      const uint64_t h = family.Hash(f, tokens[i]);
      if (h < best_hash || (h == best_hash && tokens[i] < best_token)) {
        best_hash = h;
        best_token = tokens[i];
      }
    }
    sketch.argmin_tokens[f] = best_token;
    sketch.min_hashes[f] = best_hash;
  }
  return sketch;
}

double EstimateJaccard(const MinHashSketch& a, const MinHashSketch& b) {
  NDSS_CHECK(a.min_hashes.size() == b.min_hashes.size())
      << "sketches from different families";
  if (a.min_hashes.empty()) return 0.0;
  size_t collisions = 0;
  for (size_t i = 0; i < a.min_hashes.size(); ++i) {
    if (a.min_hashes[i] == b.min_hashes[i]) ++collisions;
  }
  return static_cast<double>(collisions) /
         static_cast<double>(a.min_hashes.size());
}

double ExactDistinctJaccard(const Token* a, size_t na, const Token* b,
                            size_t nb) {
  if (na == 0 && nb == 0) return 1.0;
  std::unordered_set<Token> set_a(a, a + na);
  std::unordered_set<Token> set_b(b, b + nb);
  size_t intersection = 0;
  for (Token token : set_a) {
    if (set_b.count(token) != 0) ++intersection;
  }
  const size_t union_size = set_a.size() + set_b.size() - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double ExactMultisetJaccard(const Token* a, size_t na, const Token* b,
                            size_t nb) {
  if (na == 0 && nb == 0) return 1.0;
  std::unordered_map<Token, size_t> counts_a;
  for (size_t i = 0; i < na; ++i) ++counts_a[a[i]];
  std::unordered_map<Token, size_t> counts_b;
  for (size_t i = 0; i < nb; ++i) ++counts_b[b[i]];
  size_t intersection = 0;
  for (const auto& [token, count] : counts_a) {
    auto it = counts_b.find(token);
    if (it != counts_b.end()) intersection += std::min(count, it->second);
  }
  const size_t union_size = na + nb - intersection;
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

}  // namespace ndss
