#ifndef NDSS_HASH_HASH_FAMILY_H_
#define NDSS_HASH_HASH_FAMILY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "text/types.h"

namespace ndss {

/// Family of `k` independent 64-bit token-hash functions.
///
/// Function `i` maps a token id to a 64-bit value by mixing the token with a
/// per-function seed through SplitMix64. Each function behaves as a random
/// permutation of the vocabulary for all practical purposes (64-bit outputs
/// over vocabularies of at most a few million tokens make collisions between
/// distinct tokens vanishingly unlikely), which is the property min-hash
/// needs: the arg-min token of a sequence is a uniform sample of its distinct
/// tokens.
///
/// The family is deterministic given (k, seed), so an index built offline and
/// a query computed later agree on every hash value.
class HashFamily {
 public:
  /// Creates `k` functions derived from `seed`. `k` must be >= 1.
  HashFamily(uint32_t k, uint64_t seed);

  /// Number of functions in the family.
  uint32_t k() const { return static_cast<uint32_t>(seeds_.size()); }

  /// The seed the family was constructed with.
  uint64_t seed() const { return seed_; }

  /// Hash of `token` under function `func`. `func` must be < k().
  uint64_t Hash(uint32_t func, Token token) const {
    return SplitMix64(seeds_[func] ^ (static_cast<uint64_t>(token) + 1));
  }

 private:
  uint64_t seed_;
  std::vector<uint64_t> seeds_;
};

/// The k-mins sketch of a sequence: for each hash function, the token of the
/// sequence achieving the minimum hash value (ties broken toward the smaller
/// token id, which is deterministic and consistent between index and query
/// sides because equal hash values imply equal tokens w.h.p.).
struct MinHashSketch {
  /// argmin_tokens[i] is the arg-min token under hash function i.
  std::vector<Token> argmin_tokens;

  /// min_hashes[i] is the corresponding minimum hash value.
  std::vector<uint64_t> min_hashes;
};

/// Computes the k-mins sketch of `tokens` (all k functions, one pass per
/// function). `n` must be >= 1.
MinHashSketch ComputeSketch(const HashFamily& family, const Token* tokens,
                            size_t n);

/// Estimated Jaccard similarity from two sketches of the same family:
/// the fraction of functions on which the min-hash values collide.
double EstimateJaccard(const MinHashSketch& a, const MinHashSketch& b);

/// Exact distinct Jaccard similarity of two token sequences (the measure the
/// sketch estimates): |distinct(a) ∩ distinct(b)| / |distinct(a) ∪
/// distinct(b)|. Used by tests and the optional re-verification pass.
double ExactDistinctJaccard(const Token* a, size_t na, const Token* b,
                            size_t nb);

/// Exact multi-set Jaccard similarity, where the i-th occurrence of a token
/// only matches the i-th occurrence in the other sequence (Section 3.1).
double ExactMultisetJaccard(const Token* a, size_t na, const Token* b,
                            size_t nb);

}  // namespace ndss

#endif  // NDSS_HASH_HASH_FAMILY_H_
