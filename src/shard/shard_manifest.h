#ifndef NDSS_SHARD_SHARD_MANIFEST_H_
#define NDSS_SHARD_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/index_meta.h"

namespace ndss {

/// The durable description of a shard set: an ordered list of shard index
/// directories plus a monotonically increasing epoch, stored as
/// `<set_dir>/MANIFEST`.
///
/// The shard order is load-bearing: global text ids are assigned by
/// concatenation (shard i's local ids are offset by the total text count of
/// shards 0..i-1), exactly the semantics MergeIndexes documents. Reordering
/// the list renumbers the corpus.
///
/// Format (v2 idioms, like index.meta): little-endian fixed-width fields,
///   magic u64, epoch u64, applied_seqno u64, num_shards u32,
///   num_shards x (path_len u32, path bytes),
///   masked CRC32C u32 over everything before it.
/// Save() commits via tmp + fsync + rename, so a crash leaves either the
/// old or the new manifest, never a torn one. Load() verifies the checksum
/// and rejects an empty or duplicate-containing shard list (the same
/// validation MergeIndexes applies). Manifests written before the
/// applied_seqno field (the v1 magic, no seqno) still load, with
/// applied_seqno = 0; Save always writes the current format.
struct ShardManifest {
  /// Incremented by every committed topology change (attach/detach).
  uint64_t epoch = 0;

  /// Highest WAL sequence number whose document is contained in the sealed
  /// shards below. WAL replay skips frames at or below this, which makes
  /// replay idempotent: a crash between a spill commit and the WAL
  /// truncation re-reads those frames but never re-applies them.
  uint64_t applied_seqno = 0;

  /// Shard index directories, as given at create/attach time. Relative
  /// entries are resolved against the set directory (see ResolveShardDir),
  /// so a shard set built with relative paths can be moved as a unit.
  std::vector<std::string> shard_dirs;

  /// Path of the manifest file under `set_dir`.
  static std::string Path(const std::string& set_dir);

  /// Loads and validates `<set_dir>/MANIFEST`.
  static Result<ShardManifest> Load(const std::string& set_dir);

  /// Durably commits this manifest to `<set_dir>/MANIFEST` (the directory
  /// is created if needed). Validates the shard list first.
  Status Save(const std::string& set_dir) const;
};

/// Resolves a manifest entry to a usable path: absolute entries pass
/// through, relative ones are joined to `set_dir`.
std::string ResolveShardDir(const std::string& set_dir,
                            const std::string& entry);

/// Loads one shard's IndexMeta, first requiring its CURRENT commit marker
/// (an interrupted build must never join a serving topology).
Result<IndexMeta> LoadShardMeta(const std::string& shard_dir);

/// Checks that every shard was built with identical (k, seed, t) and that
/// the concatenated corpus stays within 2^32 texts — the preconditions
/// MergeIndexes enforces, applied to a serving topology.
Status ValidateShardMetas(const std::vector<IndexMeta>& metas,
                          const std::vector<std::string>& shard_dirs);

}  // namespace ndss

#endif  // NDSS_SHARD_SHARD_MANIFEST_H_
