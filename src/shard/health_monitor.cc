#include "shard/health_monitor.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace ndss {

HealthMonitor::HealthMonitor(const ShardHealthOptions& options,
                             const SearcherOptions& open_options, ListFn list,
                             ReopenFn reopen)
    : options_(options),
      open_options_(open_options),
      list_(std::move(list)),
      reopen_(std::move(reopen)) {}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Run(); });
}

void HealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  // Safe without the lock: Start/Stop are the owner's teardown path, not
  // concurrent with each other.
  thread_ = std::thread();
}

void HealthMonitor::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  ++kicks_;
  cv_.notify_all();
}

void HealthMonitor::Run() {
  uint64_t seen_kicks = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(options_.monitor_poll_micros),
                   [&] { return stop_ || kicks_ != seen_kicks; });
      if (stop_) return;
      seen_kicks = kicks_;
    }
    Tick(SteadyNowMicros());
  }
}

void HealthMonitor::Tick(uint64_t now_micros) {
  for (ProbeTarget& target : list_()) {
    if (target.tracker == nullptr || !target.tracker->ProbeDue(now_micros)) {
      continue;
    }
    const bool deep = target.tracker->DeepCheckDue();
    target.tracker->BeginProbe(deep);
    Result<Searcher> probed = ProbeShard(target.dir, open_options_, deep);
    if (!probed.ok()) {
      target.tracker->ProbeFailed(probed.status(), SteadyNowMicros());
      continue;
    }
    const Status installed = reopen_(target.dir, std::move(*probed));
    if (!installed.ok()) {
      // The shard was detached or rebuilt incompatibly while we probed;
      // treat as a failed probe (backoff keeps future attempts cheap).
      target.tracker->ProbeFailed(installed, SteadyNowMicros());
      continue;
    }
    target.tracker->ProbeSucceeded();
    NDSS_LOG(kInfo) << "self-healing: shard " << target.dir << " reopened ("
                    << (deep ? "deep" : "cheap") << " probe passed)";
  }
}

}  // namespace ndss
