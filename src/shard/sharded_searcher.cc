#include "shard/sharded_searcher.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/index_merger.h"
#include "shard/health_monitor.h"

namespace ndss {

namespace {

bool IsGovernanceStatus(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled() ||
         status.IsResourceExhausted();
}

std::string NormalizePath(const std::string& path) {
  std::string normalized =
      std::filesystem::path(path).lexically_normal().string();
  while (normalized.size() > 1 && normalized.back() == '/') {
    normalized.pop_back();
  }
  return normalized;
}

/// Element-wise stats merge across shards. Counters sum (each shard did
/// that work); degraded_funcs takes the worst shard (the answer's fidelity
/// floor); wall_seconds takes the slowest shard (the scatter runs them
/// concurrently) and is overwritten by the caller's own stopwatch at the
/// top level; peak_memory_bytes sums because the shard arenas are live
/// concurrently.
void AccumulateStats(const SearchStats& in, SearchStats* out) {
  out->io_bytes += in.io_bytes;
  out->short_lists += in.short_lists;
  out->long_lists += in.long_lists;
  out->empty_lists += in.empty_lists;
  out->cache_hits += in.cache_hits;
  out->shared_cache_hits += in.shared_cache_hits;
  out->windows_scanned += in.windows_scanned;
  out->candidate_texts += in.candidate_texts;
  out->degraded_funcs = std::max(out->degraded_funcs, in.degraded_funcs);
  out->io_seconds += in.io_seconds;
  out->cpu_seconds += in.cpu_seconds;
  out->wall_seconds = std::max(out->wall_seconds, in.wall_seconds);
  out->peak_memory_bytes += in.peak_memory_bytes;
}

/// Runs fn(0..n-1) on `pool` and blocks until all n complete. Unlike
/// ThreadPool::WaitIdle, the per-call counter only waits for THIS call's
/// tasks, so concurrent queries can share one pool without waiting on each
/// other's work.
void ScatterOnPool(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

/// One shard's contribution to one query.
struct ShardOutcome {
  Status status;
  SearchResult result;
  bool ran = false;  ///< false = shard was already dropped at snapshot time
};

/// Mints the immutable-source ids the cross-query list cache keys on. Ids
/// are process-global and never reused: every ShardHandle (one opened
/// Searcher over one immutable sealed shard) and every published delta
/// snapshot gets a fresh one, so a cache entry can only be found by queries
/// running against the exact source that loaded it — staleness is
/// impossible by construction (see CrossQueryListCache).
uint64_t NextCacheOwnerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// One shard of the set. Shared across topology snapshots (an attach or
/// detach reuses the untouched shards' handles), so in-flight queries keep
/// a detached shard alive until their snapshot dies. `dropped` is the
/// shard-level analogue of Searcher's per-function degradation: set once on
/// a corruption, never cleared, and checked when a query snapshots its
/// runnable set.
struct ShardHandle {
  std::string entry;  ///< manifest entry, as stored
  std::string dir;    ///< resolved index directory
  IndexMeta meta;
  std::optional<Searcher> searcher;  ///< absent when dropped at open
  std::atomic<bool> dropped{false};

  /// This handle's identity in the cross-query list cache. A reopened or
  /// replaced shard gets a new handle and therefore a new id; the old id's
  /// entries are erased when the old handle leaves the topology.
  uint64_t cache_owner = NextCacheOwnerId();

  /// Health state machine, present iff enable_self_healing. Shared with
  /// the HealthMonitor's probe targets and carried over to the replacement
  /// handle on reopen, so drop/quarantine/reopen counters span the shard's
  /// whole service life rather than one handle's.
  std::shared_ptr<ShardHealthTracker> health;
};

/// An immutable topology: the shard list of one epoch plus the
/// concatenation offsets that define global text ids. Queries hold one via
/// shared_ptr for their whole run, so AttachShard / DetachShard never
/// change a query's view mid-flight.
///
/// `delta` is the streaming-ingestion memtable: an in-memory pseudo-shard
/// that always sits after the sealed shards, so its texts take the ids from
/// `delta_offset` up and the concatenation order (and therefore every
/// sealed text's global id) is unaffected by its comings and goings.
struct Topology {
  uint64_t epoch = 0;
  std::vector<std::shared_ptr<ShardHandle>> shards;
  std::vector<TextId> offsets;
  IndexMeta combined;  ///< sealed shards + delta

  std::shared_ptr<Searcher> delta;  ///< nullptr when no memtable is set
  TextId delta_offset = 0;          ///< first global text id of the delta
  uint64_t applied_seqno = 0;       ///< WAL watermark of the sealed shards

  /// Cache identity of `delta` (0 when no delta). Unlike a sealed shard the
  /// memtable is mutable, so every SetDelta/PromoteDelta publish mints a
  /// fresh id — entries loaded from an older delta snapshot become
  /// unreachable the moment a new one is installed.
  uint64_t delta_cache_owner = 0;
};

std::shared_ptr<const Topology> BuildTopology(
    uint64_t epoch, std::vector<std::shared_ptr<ShardHandle>> shards,
    std::shared_ptr<Searcher> delta, uint64_t delta_cache_owner,
    uint64_t applied_seqno) {
  auto topo = std::make_shared<Topology>();
  topo->epoch = epoch;
  topo->shards = std::move(shards);
  topo->delta = std::move(delta);
  topo->delta_cache_owner = topo->delta != nullptr ? delta_cache_owner : 0;
  topo->applied_seqno = applied_seqno;
  uint64_t num_texts = 0;
  uint64_t total_tokens = 0;
  for (const auto& shard : topo->shards) {
    topo->offsets.push_back(static_cast<TextId>(num_texts));
    num_texts += shard->meta.num_texts;
    total_tokens += shard->meta.total_tokens;
  }
  topo->delta_offset = static_cast<TextId>(num_texts);
  topo->combined = topo->shards.front()->meta;
  if (topo->delta != nullptr) {
    num_texts += topo->delta->meta().num_texts;
    total_tokens += topo->delta->meta().total_tokens;
  }
  topo->combined.num_texts = num_texts;
  topo->combined.total_tokens = total_tokens;
  return topo;
}

/// Index of the delta's ShardOutcome in a query's sub-outcome vector (one
/// slot past the sealed shards).
size_t DeltaSlot(const Topology& topo) { return topo.shards.size(); }

size_t NumSlots(const Topology& topo) {
  return topo.shards.size() + (topo.delta != nullptr ? 1 : 0);
}

}  // namespace

struct ShardedSearcher::State {
  std::string set_dir;
  ShardedSearcherOptions options;
  std::unique_ptr<ThreadPool> pool;

  /// Guards the snapshot pointer only; held for the duration of a pointer
  /// copy or swap, never across IO.
  mutable std::mutex mu;
  std::shared_ptr<const Topology> topology;

  /// Serializes topology changes (manifest IO happens under this, outside
  /// `mu`, so queries never block on a disk write).
  std::mutex admin_mu;

  /// Cross-query list cache, absent until EnableListCache. The atomic
  /// mirror lets queries grab it with one acquire load (enabling races
  /// benignly with in-flight queries: they just miss the cache once); the
  /// unique_ptr owns it until the State dies. Destroying the State must
  /// not overlap an in-flight call (the class contract), and the monitor —
  /// the only background toucher — is declared after these members, so it
  /// is joined before the cache goes away.
  std::unique_ptr<CrossQueryListCache> list_cache_store;
  std::atomic<CrossQueryListCache*> list_cache{nullptr};

  /// Garbage-collects the cache entries of retired sources. Called (with
  /// the owner ids a topology change just made unreachable) after the swap.
  /// This is eager reclamation, not correctness: owner ids are never
  /// reused, so whatever an in-flight query on the old snapshot still
  /// loads under a retired id is unreachable by every later query and ages
  /// out of the LRU on its own.
  void RetireCacheOwners(std::initializer_list<uint64_t> owners) {
    CrossQueryListCache* cache = list_cache.load(std::memory_order_acquire);
    if (cache == nullptr) return;
    for (uint64_t owner : owners) {
      if (owner != 0) cache->EraseOwner(owner);
    }
  }

  std::shared_ptr<const Topology> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu);
    return topology;
  }

  void Swap(std::shared_ptr<const Topology> next) {
    std::lock_guard<std::mutex> lock(mu);
    topology = std::move(next);
  }

  Status SearchImpl(std::span<const Token> query, const SearchOptions& options,
                    const QueryContext* ctx, SearchResult* result);
  Result<BatchResult> SearchBatchImpl(
      const std::vector<std::vector<Token>>& queries,
      const SearchOptions& options, const BatchLimits& limits,
      uint64_t cache_budget_bytes, size_t num_threads);
  Status GatherQuery(const Topology& topo, std::vector<ShardOutcome>& subs,
                     SearchResult* result);

  /// Probe targets for the HealthMonitor: every quarantined shard of the
  /// current topology (kProbing shards are mid-probe already).
  std::vector<ProbeTarget> QuarantinedTargets() const {
    const std::shared_ptr<const Topology> topo = Snapshot();
    std::vector<ProbeTarget> targets;
    for (const auto& shard : topo->shards) {
      if (shard->health != nullptr &&
          shard->health->state() == ShardHealth::kQuarantined) {
        targets.push_back(ProbeTarget{shard->dir, shard->health});
      }
    }
    return targets;
  }

  /// Installs a probed-healthy Searcher for the quarantined shard at `dir`,
  /// called by the HealthMonitor after ProbeShard succeeds. A fresh handle
  /// (same tracker, so counters persist) replaces the dropped one and the
  /// topology swaps at the SAME epoch — reopening is not a durable topology
  /// change, the manifest never stopped listing the shard. Serializes with
  /// Attach/Detach via admin_mu; in-flight queries finish on their
  /// snapshot, exactly as for attach/detach.
  Status ReopenShard(const std::string& dir, Searcher searcher);

  /// Background prober, present iff enable_self_healing. Declared last so
  /// it is destroyed (joined) first, while the topology, locks, and pool
  /// its callbacks use are still alive.
  std::unique_ptr<HealthMonitor> monitor;
};

Status ShardedSearcher::State::ReopenShard(const std::string& dir,
                                           Searcher searcher) {
  std::lock_guard<std::mutex> admin(admin_mu);
  const std::shared_ptr<const Topology> topo = Snapshot();
  size_t found = topo->shards.size();
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (topo->shards[i]->dir == dir) {
      found = i;
      break;
    }
  }
  if (found == topo->shards.size()) {
    return Status::NotFound("shard " + dir +
                            " left the topology while being probed");
  }
  const std::shared_ptr<ShardHandle>& old = topo->shards[found];
  if (old->health == nullptr ||
      old->health->state() != ShardHealth::kProbing) {
    // The dir was detached and re-attached (fresh handle, fresh tracker)
    // while the probe ran; the probing tracker is an orphan now.
    return Status::NotFound("shard " + dir +
                            " was replaced while being probed");
  }
  const IndexMeta& meta = searcher.meta();
  if (meta.num_texts != old->meta.num_texts ||
      !SameSketchFamily(meta, old->meta)) {
    // The shard was rebuilt in place with different contents or parameters;
    // swapping it in would shift every later shard's id range (or change
    // the hash family). Operators must detach + attach for that.
    return Status::InvalidArgument(
        "shard " + dir + " no longer matches its pre-quarantine meta");
  }
  auto handle = std::make_shared<ShardHandle>();
  handle->entry = old->entry;
  handle->dir = old->dir;
  handle->meta = old->meta;
  handle->searcher.emplace(std::move(searcher));
  handle->health = old->health;
  std::vector<std::shared_ptr<ShardHandle>> shards = topo->shards;
  shards[found] = std::move(handle);
  Swap(BuildTopology(topo->epoch, std::move(shards), topo->delta,
                     topo->delta_cache_owner, topo->applied_seqno));
  RetireCacheOwners({old->cache_owner});
  return Status::OK();
}

/// Merges the per-shard outcomes of one query into `*result`, remapping
/// local text ids by each shard's concatenation offset. Shards are visited
/// in topology order and their texts occupy disjoint ascending id ranges,
/// so the concatenated rectangles and spans keep the single-searcher's
/// text-ascending order — this is what makes the merged output bit-
/// identical to a search over the merged index.
///
/// Failure merge: under enable_self_healing ANY non-governance failure
/// excludes the shard from this query's answer (survivors respond,
/// degraded_shards counts it honestly) and is reported to the shard's
/// health tracker, which decides whether the shard leaves the serving set
/// — Corruption immediately, transient errors once a breaker trips.
/// Without self-healing, a Corruption is isolated (the handle is dropped
/// for good) when allow_shard_drop is on; otherwise hard errors beat
/// governance statuses, and within a class the lowest shard index wins.
/// Failed shards still contribute their partial stats (and partial
/// matches), honouring the partial-stats contract — except excluded ones,
/// whose output is not trusted at all.
Status ShardedSearcher::State::GatherQuery(const Topology& topo,
                                           std::vector<ShardOutcome>& subs,
                                           SearchResult* result) {
  Status hard_error;
  Status governance;
  uint32_t excluded = 0;
  for (size_t i = 0; i < topo.shards.size(); ++i) {
    if (!subs[i].ran) {
      ++excluded;  // dropped before this query started
      if (topo.shards[i]->health != nullptr) {
        topo.shards[i]->health->RecordDrop();
      }
      continue;
    }
    ShardOutcome& sub = subs[i];
    if (!sub.status.ok() && options.enable_self_healing &&
        !IsGovernanceStatus(sub.status)) {
      ShardHandle& shard = *topo.shards[i];
      if (shard.health->RecordFailure(sub.status, SteadyNowMicros())) {
        shard.dropped.store(true, std::memory_order_relaxed);
        NDSS_LOG(kWarning) << "self-healing: quarantining shard " << shard.dir
                           << ": " << sub.status.ToString();
        if (monitor != nullptr) monitor->Kick();
      } else {
        // Suspect (or concurrently quarantined): excluded from this answer
        // only. Storms hit this line per query per shard, so rate-limit.
        NDSS_LOG_EVERY_SECONDS(kWarning, 1.0)
            << "degraded serving: excluding shard " << shard.dir
            << " from this query: " << sub.status.ToString();
      }
      shard.health->RecordDrop();
      ++excluded;
      continue;
    }
    if (sub.status.IsCorruption() && options.allow_shard_drop) {
      // Shard-level fault isolation: the shard is lying about its data, so
      // nothing it produced for this query is trustworthy. Survivors answer
      // with the shard's id range gone dark.
      if (!topo.shards[i]->dropped.exchange(true)) {
        NDSS_LOG(kWarning) << "degraded serving: dropping shard "
                           << topo.shards[i]->dir << ": "
                           << sub.status.ToString();
      }
      ++excluded;
      continue;
    }
    AccumulateStats(sub.result.stats, &result->stats);
    const TextId offset = topo.offsets[i];
    for (TextMatchRectangle& tr : sub.result.rectangles) {
      tr.text += offset;
      result->rectangles.push_back(tr);
    }
    for (MatchSpan& span : sub.result.spans) {
      span.text += offset;
      result->spans.push_back(span);
    }
    if (!sub.status.ok()) {
      if (IsGovernanceStatus(sub.status)) {
        if (governance.ok()) governance = sub.status;
      } else if (hard_error.ok()) {
        hard_error = sub.status;
      }
    } else if (topo.shards[i]->health != nullptr) {
      topo.shards[i]->health->RecordSuccess();
    }
  }
  // The delta memtable contributes last (its texts own the highest ids, so
  // appending keeps the text-ascending output order). It is in-memory and
  // has no health tracker: it cannot fail with storage faults, so any
  // non-governance error is a hard error, never a degraded exclusion.
  if (topo.delta != nullptr && subs.size() > topo.shards.size()) {
    ShardOutcome& sub = subs[DeltaSlot(topo)];
    if (sub.ran) {
      AccumulateStats(sub.result.stats, &result->stats);
      const TextId offset = topo.delta_offset;
      for (TextMatchRectangle& tr : sub.result.rectangles) {
        tr.text += offset;
        result->rectangles.push_back(tr);
      }
      for (MatchSpan& span : sub.result.spans) {
        span.text += offset;
        result->spans.push_back(span);
      }
      if (!sub.status.ok()) {
        if (IsGovernanceStatus(sub.status)) {
          if (governance.ok()) governance = sub.status;
        } else if (hard_error.ok()) {
          hard_error = sub.status;
        }
      }
    }
  }
  result->stats.degraded_shards = excluded;
  if (excluded == topo.shards.size() && topo.delta == nullptr) {
    return Status::Corruption("every shard of the set is dropped");
  }
  if (!hard_error.ok()) return hard_error;
  return governance;
}

Status ShardedSearcher::State::SearchImpl(std::span<const Token> query,
                                          const SearchOptions& search_options,
                                          const QueryContext* ctx,
                                          SearchResult* result) {
  *result = SearchResult();
  Stopwatch wall;
  const std::shared_ptr<const Topology> topo = Snapshot();
  std::vector<ShardOutcome> subs(NumSlots(*topo));
  std::vector<size_t> runnable;
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (topo->shards[i]->searcher.has_value() &&
        !topo->shards[i]->dropped.load(std::memory_order_relaxed)) {
      runnable.push_back(i);
    }
  }
  if (runnable.empty() && topo->delta == nullptr) {
    return Status::Corruption("every shard of the set is dropped");
  }
  if (topo->delta != nullptr) runnable.push_back(DeltaSlot(*topo));
  CrossQueryListCache* const cache =
      list_cache.load(std::memory_order_acquire);
  ScatterOnPool(pool.get(), runnable.size(), [&](size_t j) {
    const size_t i = runnable[j];
    const bool is_delta = i == DeltaSlot(*topo);
    Searcher* searcher =
        is_delta ? topo->delta.get() : &*topo->shards[i]->searcher;
    // Each source looks up cached lists under its own immutable owner id
    // (a nullptr cache or id 0 degrades to the uncached path).
    const uint64_t owner =
        is_delta ? topo->delta_cache_owner : topo->shards[i]->cache_owner;
    ShardOutcome& sub = subs[i];
    sub.ran = true;
    if (ctx == nullptr) {
      // Ungoverned fast path, bit-identical to the pre-governance shard
      // query.
      sub.status = searcher->Search(query, search_options, nullptr, cache,
                                    owner, &sub.result);
      return;
    }
    // Hierarchical governance: the deadline and cancel flag are shared
    // verbatim; the shard gets an accounting-only arena parented to the
    // query's budget, so the caller's cap spans the whole scatter while
    // per-shard peaks stay observable.
    QueryContext child;
    if (ctx->has_deadline()) child.set_deadline(ctx->deadline());
    child.set_cancel_flag(ctx->cancel_flag());
    MemoryBudget arena(0, ctx->memory_budget());
    if (ctx->memory_budget() != nullptr) child.set_memory_budget(&arena);
    sub.status = searcher->Search(query, search_options, &child, cache, owner,
                                  &sub.result);
  });
  const Status status = GatherQuery(*topo, subs, result);
  result->stats.wall_seconds = wall.ElapsedSeconds();
  if (ctx != nullptr && ctx->memory_budget() != nullptr) {
    result->stats.peak_memory_bytes = ctx->memory_budget()->peak();
  }
  return status;
}

Result<BatchResult> ShardedSearcher::State::SearchBatchImpl(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& search_options, const BatchLimits& limits,
    uint64_t cache_budget_bytes, size_t num_threads) {
  if (limits.batch_timeout_micros < 0 || limits.query_timeout_micros < 0) {
    return Status::InvalidArgument("batch timeouts must be >= 0");
  }
  const std::shared_ptr<const Topology> topo = Snapshot();
  std::vector<size_t> runnable;
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (topo->shards[i]->searcher.has_value() &&
        !topo->shards[i]->dropped.load(std::memory_order_relaxed)) {
      runnable.push_back(i);
    }
  }
  if (runnable.empty() && topo->delta == nullptr) {
    return Status::Corruption("every shard of the set is dropped");
  }
  if (topo->delta != nullptr) runnable.push_back(DeltaSlot(*topo));

  // Composition hooks: every shard sub-batch sheds against one absolute
  // deadline and charges one inflight budget, so the caller's limits mean
  // the same thing they would on a single Searcher.
  BatchLimits sub_limits = limits;
  if (!sub_limits.has_batch_deadline && limits.batch_timeout_micros > 0) {
    sub_limits.has_batch_deadline = true;
    sub_limits.batch_deadline =
        QueryContext::Clock::now() +
        std::chrono::microseconds(limits.batch_timeout_micros);
    sub_limits.batch_timeout_micros = 0;
  }
  MemoryBudget inflight(limits.max_inflight_bytes, limits.inflight_parent);
  sub_limits.max_inflight_bytes = 0;
  sub_limits.inflight_parent = &inflight;
  const uint64_t shard_cache_budget = cache_budget_bytes / runnable.size();

  struct ShardBatch {
    Status status;
    BatchResult batch;
  };
  std::vector<ShardBatch> shard_batches(NumSlots(*topo));
  CrossQueryListCache* const cache =
      list_cache.load(std::memory_order_acquire);
  ScatterOnPool(pool.get(), runnable.size(), [&](size_t j) {
    const size_t i = runnable[j];
    const bool is_delta = i == DeltaSlot(*topo);
    Searcher* searcher =
        is_delta ? topo->delta.get() : &*topo->shards[i]->searcher;
    // The cross-query cache rides the composed limits: each sub-batch gets
    // its source's immutable owner id, so shards never mix up each other's
    // lists and a retired source's entries are unreachable.
    BatchLimits shard_limits = sub_limits;
    shard_limits.shared_cache = cache;
    shard_limits.shared_cache_owner =
        is_delta ? topo->delta_cache_owner : topo->shards[i]->cache_owner;
    Result<BatchResult> sub =
        searcher->SearchBatch(queries, search_options, shard_limits,
                              shard_cache_budget, num_threads);
    if (sub.ok()) {
      shard_batches[i].batch = std::move(*sub);
    } else {
      shard_batches[i].status = sub.status();
    }
  });
  for (size_t i : runnable) {
    // A sub-batch call itself only fails on invalid arguments, which no
    // per-query merge can repair — except under self-healing, where a
    // storage-level whole-batch failure becomes that shard failing every
    // query of the batch (GatherQuery then excludes and classifies it).
    // The delta is in-memory: its whole-batch failure is always fatal.
    if (shard_batches[i].status.ok()) continue;
    if (options.enable_self_healing && i != DeltaSlot(*topo) &&
        !IsGovernanceStatus(shard_batches[i].status) &&
        !shard_batches[i].status.IsInvalidArgument()) {
      continue;
    }
    return shard_batches[i].status;
  }

  BatchResult out;
  out.results.resize(queries.size());
  out.statuses.assign(queries.size(), Status::OK());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ShardOutcome> subs(NumSlots(*topo));
    for (size_t i : runnable) {
      subs[i].ran = true;
      if (!shard_batches[i].status.ok()) {
        // Whole-sub-batch failure (self-healing path): no per-query output
        // exists for this shard.
        subs[i].status = shard_batches[i].status;
        continue;
      }
      subs[i].status = shard_batches[i].batch.statuses[q];
      subs[i].result = std::move(shard_batches[i].batch.results[q]);
    }
    out.statuses[q] = GatherQuery(*topo, subs, &out.results[q]);

    const Status& status = out.statuses[q];
    if (status.ok()) {
      ++out.stats.queries_ok;
      if (out.results[q].stats.degraded_funcs > 0 ||
          out.results[q].stats.degraded_shards > 0) {
        ++out.stats.queries_degraded;
      }
    } else if (status.IsDeadlineExceeded()) {
      ++out.stats.queries_deadline_exceeded;
    } else if (status.IsCancelled()) {
      ++out.stats.queries_shed;
    } else if (status.IsResourceExhausted()) {
      ++out.stats.queries_resource_exhausted;
    } else {
      ++out.stats.queries_failed;
    }
    out.stats.peak_query_bytes = std::max(
        out.stats.peak_query_bytes, out.results[q].stats.peak_memory_bytes);
  }
  out.stats.peak_inflight_bytes = inflight.peak();
  return out;
}

ShardedSearcher::ShardedSearcher(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
ShardedSearcher::ShardedSearcher(ShardedSearcher&&) noexcept = default;
ShardedSearcher& ShardedSearcher::operator=(ShardedSearcher&&) noexcept =
    default;
ShardedSearcher::~ShardedSearcher() = default;

Result<ShardedSearcher> ShardedSearcher::Open(
    const std::string& set_dir, const ShardedSearcherOptions& options) {
  NDSS_ASSIGN_OR_RETURN(ShardManifest manifest, ShardManifest::Load(set_dir));
  // Self-healing subsumes shard-level isolation: it must survive the same
  // faults allow_shard_drop does, plus transient ones.
  const bool isolate = options.allow_shard_drop || options.enable_self_healing;
  std::vector<std::shared_ptr<ShardHandle>> shards;
  std::vector<IndexMeta> metas;
  size_t healthy = 0;
  for (const std::string& entry : manifest.shard_dirs) {
    auto handle = std::make_shared<ShardHandle>();
    handle->entry = entry;
    handle->dir = ResolveShardDir(set_dir, entry);
    if (options.enable_self_healing) {
      handle->health = std::make_shared<ShardHealthTracker>(options.health);
    }
    // The meta is required even under allow_shard_drop: without it the
    // shard's id range is unknown and every later shard's global ids would
    // shift, breaking the stable-id contract of a degraded drop.
    NDSS_ASSIGN_OR_RETURN(handle->meta, LoadShardMeta(handle->dir));
    Result<Searcher> searcher =
        Searcher::Open(handle->dir, options.shard_options);
    if (searcher.ok()) {
      handle->searcher.emplace(std::move(*searcher));
      ++healthy;
    } else {
      if (!isolate) return searcher.status();
      NDSS_LOG(kWarning) << "degraded open: dropping shard " << handle->dir
                         << ": " << searcher.status().ToString();
      handle->dropped.store(true, std::memory_order_relaxed);
      if (handle->health != nullptr) {
        // Unopenable = no suspect grace: straight to quarantine so the
        // monitor starts probing for recovery right away. Note the handle
        // has no Searcher — reopening builds a fresh handle anyway.
        handle->health->Quarantine(searcher.status(), SteadyNowMicros());
      }
    }
    metas.push_back(handle->meta);
    shards.push_back(std::move(handle));
  }
  NDSS_RETURN_NOT_OK(ValidateShardMetas(metas, manifest.shard_dirs));
  if (healthy == 0) {
    return Status::Corruption("no healthy shard in set " + set_dir);
  }
  auto state = std::make_unique<State>();
  state->set_dir = set_dir;
  state->options = options;
  state->topology = BuildTopology(manifest.epoch, std::move(shards), nullptr,
                                  0, manifest.applied_seqno);
  size_t threads = options.num_threads;
  if (threads == 0) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(state->topology->shards.size(), hw);
  }
  state->pool = std::make_unique<ThreadPool>(std::max<size_t>(1, threads));
  if (options.enable_self_healing) {
    // The callbacks capture the State address, which is stable across
    // ShardedSearcher moves (the unique_ptr moves, the State does not).
    State* s = state.get();
    state->monitor = std::make_unique<HealthMonitor>(
        options.health, options.shard_options,
        [s] { return s->QuarantinedTargets(); },
        [s](const std::string& dir, Searcher searcher) {
          return s->ReopenShard(dir, std::move(searcher));
        });
    state->monitor->Start();
  }
  return ShardedSearcher(std::move(state));
}

Result<SearchResult> ShardedSearcher::Search(std::span<const Token> query,
                                             const SearchOptions& options) {
  SearchResult result;
  NDSS_RETURN_NOT_OK(state_->SearchImpl(query, options, nullptr, &result));
  return result;
}

Status ShardedSearcher::Search(std::span<const Token> query,
                               const SearchOptions& options,
                               const QueryContext* ctx, SearchResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must be non-null");
  }
  return state_->SearchImpl(query, options, ctx, result);
}

Result<std::vector<SearchResult>> ShardedSearcher::SearchBatch(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& options, uint64_t cache_budget_bytes,
    size_t num_threads) {
  NDSS_ASSIGN_OR_RETURN(
      BatchResult batch,
      state_->SearchBatchImpl(queries, options, BatchLimits{},
                              cache_budget_bytes, num_threads));
  for (const Status& status : batch.statuses) {
    if (!status.ok()) return status;
  }
  return std::move(batch.results);
}

Result<BatchResult> ShardedSearcher::SearchBatch(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& options, const BatchLimits& limits,
    uint64_t cache_budget_bytes, size_t num_threads) {
  return state_->SearchBatchImpl(queries, options, limits, cache_budget_bytes,
                                 num_threads);
}

Status ShardedSearcher::AttachShard(const std::string& shard_dir) {
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  const std::string resolved = ResolveShardDir(state_->set_dir, shard_dir);
  const std::string normalized_entry = NormalizePath(shard_dir);
  const std::string normalized_dir = NormalizePath(resolved);
  for (const auto& shard : topo->shards) {
    if (NormalizePath(shard->entry) == normalized_entry ||
        NormalizePath(shard->dir) == normalized_dir) {
      return Status::InvalidArgument("shard " + shard_dir +
                                     " is already attached");
    }
  }
  auto handle = std::make_shared<ShardHandle>();
  handle->entry = shard_dir;
  handle->dir = resolved;
  NDSS_ASSIGN_OR_RETURN(handle->meta, LoadShardMeta(resolved));
  if (!SameSketchFamily(handle->meta, topo->combined)) {
    return Status::InvalidArgument(
        "shard " + shard_dir +
        " was built with different (k, seed, t, sketch scheme) than the set");
  }
  if (topo->combined.num_texts + handle->meta.num_texts > 0xffffffffULL) {
    return Status::InvalidArgument("attaching " + shard_dir +
                                   " would exceed 2^32 texts");
  }
  // Attaching a broken shard fails loudly even under allow_shard_drop:
  // degradation is for faults that happen while serving, not ones visible
  // at admission.
  NDSS_ASSIGN_OR_RETURN(Searcher searcher,
                        Searcher::Open(resolved, state_->options.shard_options));
  handle->searcher.emplace(std::move(searcher));
  if (state_->options.enable_self_healing) {
    handle->health = std::make_shared<ShardHealthTracker>(
        state_->options.health);
  }

  ShardManifest manifest;
  manifest.epoch = topo->epoch + 1;
  manifest.applied_seqno = topo->applied_seqno;
  for (const auto& shard : topo->shards) {
    manifest.shard_dirs.push_back(shard->entry);
  }
  manifest.shard_dirs.push_back(shard_dir);
  // Durable truth first, serving second: if the commit fails the topology
  // is unchanged; if we crash right after it, the next Open serves the new
  // shard list.
  NDSS_RETURN_NOT_OK(manifest.Save(state_->set_dir));
  std::vector<std::shared_ptr<ShardHandle>> shards = topo->shards;
  shards.push_back(std::move(handle));
  state_->Swap(BuildTopology(manifest.epoch, std::move(shards), topo->delta,
                             topo->delta_cache_owner, topo->applied_seqno));
  return Status::OK();
}

Status ShardedSearcher::DetachShard(const std::string& shard_dir) {
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  const std::string normalized_entry = NormalizePath(shard_dir);
  const std::string normalized_dir =
      NormalizePath(ResolveShardDir(state_->set_dir, shard_dir));
  size_t found = topo->shards.size();
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (NormalizePath(topo->shards[i]->entry) == normalized_entry ||
        NormalizePath(topo->shards[i]->dir) == normalized_dir) {
      found = i;
      break;
    }
  }
  if (found == topo->shards.size()) {
    return Status::NotFound("shard " + shard_dir + " is not in the set");
  }
  if (topo->shards.size() == 1) {
    return Status::InvalidArgument(
        "cannot detach the last shard (a shard set must keep at least one)");
  }
  ShardManifest manifest;
  manifest.epoch = topo->epoch + 1;
  manifest.applied_seqno = topo->applied_seqno;
  std::vector<std::shared_ptr<ShardHandle>> shards;
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (i == found) continue;
    manifest.shard_dirs.push_back(topo->shards[i]->entry);
    shards.push_back(topo->shards[i]);
  }
  NDSS_RETURN_NOT_OK(manifest.Save(state_->set_dir));
  state_->Swap(BuildTopology(manifest.epoch, std::move(shards), topo->delta,
                             topo->delta_cache_owner, topo->applied_seqno));
  state_->RetireCacheOwners({topo->shards[found]->cache_owner});
  return Status::OK();
}

Status ShardedSearcher::SetDelta(std::shared_ptr<Searcher> delta) {
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  if (delta != nullptr) {
    const IndexMeta& meta = delta->meta();
    if (!SameSketchFamily(meta, topo->combined)) {
      return Status::InvalidArgument(
          "delta index was built with different (k, seed, t, sketch scheme) "
          "than the set");
    }
    uint64_t sealed_texts = 0;
    for (const auto& shard : topo->shards) {
      sealed_texts += shard->meta.num_texts;
    }
    if (sealed_texts + meta.num_texts > 0xffffffffULL) {
      return Status::InvalidArgument("delta index would exceed 2^32 texts");
    }
  }
  const bool has_delta = delta != nullptr;
  state_->Swap(BuildTopology(topo->epoch, topo->shards, std::move(delta),
                             has_delta ? NextCacheOwnerId() : 0,
                             topo->applied_seqno));
  state_->RetireCacheOwners({topo->delta_cache_owner});
  return Status::OK();
}

Status ShardedSearcher::PromoteDelta(const std::string& shard_entry,
                                     std::shared_ptr<Searcher> next_delta,
                                     uint64_t applied_seqno) {
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  const std::string resolved = ResolveShardDir(state_->set_dir, shard_entry);
  const std::string normalized_entry = NormalizePath(shard_entry);
  const std::string normalized_dir = NormalizePath(resolved);
  for (const auto& shard : topo->shards) {
    if (NormalizePath(shard->entry) == normalized_entry ||
        NormalizePath(shard->dir) == normalized_dir) {
      return Status::InvalidArgument("shard " + shard_entry +
                                     " is already attached");
    }
  }
  if (applied_seqno < topo->applied_seqno) {
    return Status::InvalidArgument(
        "applied_seqno must not move backwards (have " +
        std::to_string(topo->applied_seqno) + ", got " +
        std::to_string(applied_seqno) + ")");
  }
  auto handle = std::make_shared<ShardHandle>();
  handle->entry = shard_entry;
  handle->dir = resolved;
  NDSS_ASSIGN_OR_RETURN(handle->meta, LoadShardMeta(resolved));
  if (!SameSketchFamily(handle->meta, topo->combined)) {
    return Status::InvalidArgument(
        "shard " + shard_entry +
        " was built with different (k, seed, t, sketch scheme) than the set");
  }
  uint64_t num_texts = handle->meta.num_texts;
  for (const auto& shard : topo->shards) num_texts += shard->meta.num_texts;
  if (next_delta != nullptr) num_texts += next_delta->meta().num_texts;
  if (num_texts > 0xffffffffULL) {
    return Status::InvalidArgument("promoting " + shard_entry +
                                   " would exceed 2^32 texts");
  }
  // A spilled shard that cannot be opened must fail the promotion loudly:
  // the memtable keeps serving these documents and the WAL keeps them
  // durable, so nothing is lost.
  NDSS_ASSIGN_OR_RETURN(
      Searcher searcher,
      Searcher::Open(resolved, state_->options.shard_options));
  handle->searcher.emplace(std::move(searcher));
  if (state_->options.enable_self_healing) {
    handle->health =
        std::make_shared<ShardHealthTracker>(state_->options.health);
  }

  ShardManifest manifest;
  manifest.epoch = topo->epoch + 1;
  manifest.applied_seqno = applied_seqno;
  for (const auto& shard : topo->shards) {
    manifest.shard_dirs.push_back(shard->entry);
  }
  manifest.shard_dirs.push_back(shard_entry);
  // The manifest commit is the atomic point of the spill: before it, a
  // crash recovers by replaying the WAL into a fresh memtable (the built
  // shard directory is an unreferenced orphan); after it, replay skips the
  // spilled frames via applied_seqno. The swap below retires the old delta
  // and admits the sealed shard in one step, so no query snapshot ever
  // sees the spilled documents twice or not at all.
  NDSS_RETURN_NOT_OK(manifest.Save(state_->set_dir));
  std::vector<std::shared_ptr<ShardHandle>> shards = topo->shards;
  shards.push_back(std::move(handle));
  const bool has_next_delta = next_delta != nullptr;
  state_->Swap(BuildTopology(manifest.epoch, std::move(shards),
                             std::move(next_delta),
                             has_next_delta ? NextCacheOwnerId() : 0,
                             applied_seqno));
  state_->RetireCacheOwners({topo->delta_cache_owner});
  return Status::OK();
}

Status ShardedSearcher::ReplaceShards(
    const std::vector<std::string>& shard_entries,
    const std::string& merged_entry) {
  if (shard_entries.empty()) {
    return Status::InvalidArgument("ReplaceShards needs at least one shard");
  }
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  // The run must match the current topology exactly — same shards, same
  // order, contiguous. A compaction planned against an older topology
  // (shards detached or already compacted since) must not commit: text-id
  // preservation only holds for the topology the merge actually read.
  size_t start = topo->shards.size();
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (NormalizePath(topo->shards[i]->entry) ==
            NormalizePath(shard_entries.front()) ||
        NormalizePath(topo->shards[i]->dir) ==
            NormalizePath(
                ResolveShardDir(state_->set_dir, shard_entries.front()))) {
      start = i;
      break;
    }
  }
  if (start == topo->shards.size() ||
      start + shard_entries.size() > topo->shards.size()) {
    return Status::NotFound("compaction run is not in the current topology");
  }
  uint64_t run_texts = 0;
  for (size_t j = 0; j < shard_entries.size(); ++j) {
    const auto& shard = topo->shards[start + j];
    if (NormalizePath(shard->entry) != NormalizePath(shard_entries[j]) &&
        NormalizePath(shard->dir) !=
            NormalizePath(ResolveShardDir(state_->set_dir,
                                          shard_entries[j]))) {
      return Status::NotFound(
          "compaction run no longer matches the topology at " +
          shard_entries[j]);
    }
    run_texts += shard->meta.num_texts;
  }
  auto handle = std::make_shared<ShardHandle>();
  handle->entry = merged_entry;
  handle->dir = ResolveShardDir(state_->set_dir, merged_entry);
  NDSS_ASSIGN_OR_RETURN(handle->meta, LoadShardMeta(handle->dir));
  if (!SameSketchFamily(handle->meta, topo->combined)) {
    return Status::InvalidArgument(
        "merged shard " + merged_entry +
        " was built with different (k, seed, t, sketch scheme) than the set");
  }
  if (handle->meta.num_texts != run_texts) {
    // The merged shard must be id-preserving: exactly the run's texts, in
    // concatenation order. Anything else would renumber every later shard.
    return Status::InvalidArgument(
        "merged shard " + merged_entry + " holds " +
        std::to_string(handle->meta.num_texts) + " texts, expected " +
        std::to_string(run_texts));
  }
  NDSS_ASSIGN_OR_RETURN(
      Searcher searcher,
      Searcher::Open(handle->dir, state_->options.shard_options));
  handle->searcher.emplace(std::move(searcher));
  if (state_->options.enable_self_healing) {
    handle->health =
        std::make_shared<ShardHealthTracker>(state_->options.health);
  }

  ShardManifest manifest;
  manifest.epoch = topo->epoch + 1;
  manifest.applied_seqno = topo->applied_seqno;
  std::vector<std::shared_ptr<ShardHandle>> shards;
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    if (i == start) {
      manifest.shard_dirs.push_back(merged_entry);
      shards.push_back(handle);
    }
    if (i >= start && i < start + shard_entries.size()) continue;
    manifest.shard_dirs.push_back(topo->shards[i]->entry);
    shards.push_back(topo->shards[i]);
  }
  NDSS_RETURN_NOT_OK(manifest.Save(state_->set_dir));
  state_->Swap(BuildTopology(manifest.epoch, std::move(shards), topo->delta,
                             topo->delta_cache_owner, topo->applied_seqno));
  for (size_t j = 0; j < shard_entries.size(); ++j) {
    state_->RetireCacheOwners({topo->shards[start + j]->cache_owner});
  }
  return Status::OK();
}

Status ShardedSearcher::EnableListCache(uint64_t budget_bytes,
                                        MemoryBudget* parent) {
  std::lock_guard<std::mutex> admin(state_->admin_mu);
  if (state_->list_cache_store != nullptr) {
    return Status::InvalidArgument("the list cache is already enabled");
  }
  state_->list_cache_store =
      std::make_unique<CrossQueryListCache>(budget_bytes, parent);
  // Publish last: a query that loads the pointer sees a fully constructed
  // cache.
  state_->list_cache.store(state_->list_cache_store.get(),
                           std::memory_order_release);
  return Status::OK();
}

const CrossQueryListCache* ShardedSearcher::list_cache() const {
  return state_->list_cache.load(std::memory_order_acquire);
}

uint64_t ShardedSearcher::applied_seqno() const {
  return state_->Snapshot()->applied_seqno;
}

uint64_t ShardedSearcher::delta_texts() const {
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  return topo->delta != nullptr ? topo->delta->meta().num_texts : 0;
}

const std::string& ShardedSearcher::set_dir() const {
  return state_->set_dir;
}

uint64_t ShardedSearcher::epoch() const { return state_->Snapshot()->epoch; }

IndexMeta ShardedSearcher::meta() const {
  return state_->Snapshot()->combined;
}

std::vector<ShardInfo> ShardedSearcher::shards() const {
  const std::shared_ptr<const Topology> topo = state_->Snapshot();
  std::vector<ShardInfo> out;
  out.reserve(topo->shards.size());
  for (size_t i = 0; i < topo->shards.size(); ++i) {
    const ShardHandle& shard = *topo->shards[i];
    ShardInfo info;
    info.dir = shard.dir;
    info.text_offset = topo->offsets[i];
    info.num_texts = shard.meta.num_texts;
    info.dropped = !shard.searcher.has_value() ||
                   shard.dropped.load(std::memory_order_relaxed);
    if (shard.health != nullptr) {
      info.health = shard.health->Snapshot();
    } else if (info.dropped) {
      info.health.state = ShardHealth::kQuarantined;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace ndss
