#include "shard/shard_health.h"

#include <algorithm>
#include <chrono>

#include "index/index_meta.h"
#include "index/inverted_index_reader.h"
#include "shard/shard_manifest.h"

namespace ndss {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kProbing:
      return "probing";
  }
  return "?";
}

uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ShardHealthTracker::ShardHealthTracker(const ShardHealthOptions& options)
    : options_(options),
      window_(std::max<uint32_t>(1, options.error_rate_window), false),
      probe_delay_micros_(options.initial_probe_delay_micros) {}

void ShardHealthTracker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == ShardHealth::kQuarantined || state_ == ShardHealth::kProbing) {
    // A success observed by an in-flight query that snapshotted the shard
    // before it was quarantined; only a probe may clear quarantine.
    return;
  }
  RecordOutcomeLocked(false);
  consecutive_failures_ = 0;
  state_ = ShardHealth::kHealthy;
}

bool ShardHealthTracker::RecordFailure(const Status& status,
                                       uint64_t now_micros) {
  if (status.IsDeadlineExceeded() || status.IsCancelled() ||
      status.IsResourceExhausted()) {
    // Governance stops are the caller's doing, not evidence about the
    // shard's storage.
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = status.ToString();
  if (status.IsCorruption()) {
    ++corruption_failures_;
  } else {
    ++transient_failures_;
  }
  if (state_ == ShardHealth::kQuarantined || state_ == ShardHealth::kProbing) {
    return false;  // already out of the serving set
  }
  if (status.IsCorruption()) {
    // The shard is lying about its data: nothing it serves is trustworthy,
    // so there is no "suspect" grace period.
    QuarantineLocked(now_micros);
    return true;
  }
  RecordOutcomeLocked(true);
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.consecutive_failures_to_quarantine ||
      RateBreakerTrippedLocked()) {
    QuarantineLocked(now_micros);
    return true;
  }
  state_ = ShardHealth::kSuspect;
  return false;
}

void ShardHealthTracker::RecordDrop() {
  std::lock_guard<std::mutex> lock(mu_);
  ++drops_;
}

bool ShardHealthTracker::Quarantine(const Status& cause, uint64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = cause.ToString();
  if (cause.IsCorruption()) {
    ++corruption_failures_;
  } else {
    ++transient_failures_;
  }
  if (state_ == ShardHealth::kQuarantined || state_ == ShardHealth::kProbing) {
    return false;
  }
  QuarantineLocked(now_micros);
  return true;
}

bool ShardHealthTracker::ProbeDue(uint64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == ShardHealth::kQuarantined && now_micros >= next_probe_micros_;
}

bool ShardHealthTracker::DeepCheckDue() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_since_quarantine_ >= options_.deep_check_after_probes ||
         quarantines_since_deep_ok_ >= options_.deep_check_after_probes;
}

void ShardHealthTracker::BeginProbe(bool deep) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != ShardHealth::kQuarantined) return;
  state_ = ShardHealth::kProbing;
  probing_deep_ = deep;
  ++probes_;
  ++probes_since_quarantine_;
}

void ShardHealthTracker::ProbeSucceeded() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != ShardHealth::kProbing) return;
  state_ = ShardHealth::kHealthy;
  ++reopens_;
  consecutive_failures_ = 0;
  probes_since_quarantine_ = 0;
  if (probing_deep_) quarantines_since_deep_ok_ = 0;
  probe_delay_micros_ = options_.initial_probe_delay_micros;
  std::fill(window_.begin(), window_.end(), false);
  window_next_ = 0;
  window_filled_ = 0;
  last_error_.clear();
}

void ShardHealthTracker::ProbeFailed(const Status& status,
                                     uint64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != ShardHealth::kProbing) return;
  ++probe_failures_;
  last_error_ = status.ToString();
  state_ = ShardHealth::kQuarantined;
  probe_delay_micros_ = std::min<uint64_t>(
      options_.max_probe_delay_micros,
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                static_cast<double>(probe_delay_micros_) *
                                options_.probe_backoff_multiplier)));
  next_probe_micros_ = now_micros + probe_delay_micros_;
}

ShardHealth ShardHealthTracker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool ShardHealthTracker::excluded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == ShardHealth::kQuarantined || state_ == ShardHealth::kProbing;
}

ShardHealthSnapshot ShardHealthTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardHealthSnapshot snapshot;
  snapshot.state = state_;
  snapshot.transient_failures = transient_failures_;
  snapshot.corruption_failures = corruption_failures_;
  snapshot.drops = drops_;
  snapshot.quarantines = quarantines_;
  snapshot.reopens = reopens_;
  snapshot.probes = probes_;
  snapshot.probe_failures = probe_failures_;
  snapshot.consecutive_failures = consecutive_failures_;
  snapshot.last_error = last_error_;
  return snapshot;
}

void ShardHealthTracker::RecordOutcomeLocked(bool failed) {
  window_[window_next_] = failed;
  window_next_ = (window_next_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
}

bool ShardHealthTracker::RateBreakerTrippedLocked() const {
  if (window_filled_ < options_.error_rate_min_samples) return false;
  size_t failures = 0;
  for (size_t i = 0; i < window_filled_; ++i) {
    failures += window_[i] ? 1 : 0;
  }
  return static_cast<double>(failures) >=
         options_.error_rate_threshold * static_cast<double>(window_filled_);
}

void ShardHealthTracker::QuarantineLocked(uint64_t now_micros) {
  state_ = ShardHealth::kQuarantined;
  ++quarantines_;
  ++quarantines_since_deep_ok_;
  probes_since_quarantine_ = 0;
  probe_delay_micros_ = options_.initial_probe_delay_micros;
  next_probe_micros_ = now_micros + probe_delay_micros_;
}

Result<Searcher> ProbeShard(const std::string& shard_dir,
                            const SearcherOptions& options, bool deep) {
  // Cheap pass: commit marker + meta CRC (LoadShardMeta), then every index
  // file's header/footer via a real open — the same validation serving
  // relies on, so a probe success means the shard is actually servable.
  NDSS_ASSIGN_OR_RETURN(IndexMeta meta, LoadShardMeta(shard_dir));
  NDSS_ASSIGN_OR_RETURN(Searcher searcher,
                        Searcher::Open(shard_dir, options));
  if (deep) {
    // Fsck-style physical check: read and CRC-verify every posting list of
    // every hash function. A shard that flapped through several cheap
    // probes does not rejoin the topology until its whole file set proves
    // clean.
    std::vector<PostedWindow> windows;
    for (uint32_t func = 0; func < meta.k; ++func) {
      const std::string path = IndexMeta::InvertedIndexPath(shard_dir, func);
      NDSS_ASSIGN_OR_RETURN(InvertedIndexReader reader,
                            InvertedIndexReader::Open(path));
      for (const ListMeta& list : reader.directory()) {
        windows.clear();
        NDSS_RETURN_NOT_OK(reader.ReadList(list, &windows));
      }
    }
  }
  return searcher;
}

}  // namespace ndss
