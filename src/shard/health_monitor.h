#ifndef NDSS_SHARD_HEALTH_MONITOR_H_
#define NDSS_SHARD_HEALTH_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/searcher.h"
#include "shard/shard_health.h"

namespace ndss {

/// One quarantined shard the monitor may try to heal, snapshotted from the
/// owner's current topology.
struct ProbeTarget {
  std::string dir;  ///< resolved index directory to probe
  std::shared_ptr<ShardHealthTracker> tracker;
};

/// Background recovery thread of a self-healing shard set.
///
/// Every poll interval (or immediately after Kick) it asks the owner for
/// the currently quarantined shards, and for each one whose probe delay
/// has elapsed runs ProbeShard — cheap open + header/CRC validation,
/// escalating to the deep full-list check once
/// ShardHealthOptions::deep_check_after_probes cheap probes have failed —
/// and on success hands the freshly opened Searcher back to the owner to
/// swap into the serving topology. All state transitions go through the
/// shard's ShardHealthTracker, so query threads observe them atomically.
///
/// The monitor owns no topology: `list` and `reopen` are the owner's
/// (ShardedSearcher's) and must be safe to call from the monitor thread
/// until Stop() returns. Stop() (also run by the destructor) joins the
/// thread; a probe in flight finishes first.
class HealthMonitor {
 public:
  /// `list` snapshots the probe targets; `reopen` installs a recovered
  /// shard's Searcher (returning non-OK when the shard left the topology
  /// or no longer matches — the probe then counts as failed).
  using ListFn = std::function<std::vector<ProbeTarget>()>;
  using ReopenFn = std::function<Status(const std::string& dir, Searcher)>;

  HealthMonitor(const ShardHealthOptions& options,
                const SearcherOptions& open_options, ListFn list,
                ReopenFn reopen);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Starts the background thread (idempotent).
  void Start();

  /// Stops and joins the background thread (idempotent).
  void Stop();

  /// Wakes the thread now — called when a shard enters quarantine so the
  /// first probe is scheduled promptly instead of a poll interval later.
  void Kick();

  /// One synchronous monitor pass at `now_micros` (what the thread runs
  /// each wakeup). Exposed so tests can drive recovery deterministically
  /// without the thread.
  void Tick(uint64_t now_micros);

 private:
  void Run();

  const ShardHealthOptions options_;
  const SearcherOptions open_options_;
  const ListFn list_;
  const ReopenFn reopen_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t kicks_ = 0;
  std::thread thread_;
};

}  // namespace ndss

#endif  // NDSS_SHARD_HEALTH_MONITOR_H_
