#include "shard/shard_manifest.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/file_io.h"
#include "index/index_merger.h"

namespace ndss {

namespace {
/// Original format: magic u64 + epoch u64 + num_shards u32 ... crc u32.
constexpr uint64_t kManifestMagicV1 = 0x32494e414d53444eULL;  // "NDSMANI2"-ish
/// Current format adds applied_seqno u64 after the epoch (WAL replay
/// watermark for streaming ingestion).
constexpr uint64_t kManifestMagicV2 = 0x33494e414d53444eULL;  // "NDSMANI3"-ish
constexpr size_t kFixedPrefixV1 = 8 + 8 + 4;
constexpr size_t kFixedPrefixV2 = 8 + 8 + 8 + 4;
constexpr size_t kCrcSize = 4;
/// Paths longer than this are certainly corruption, not configuration.
constexpr uint32_t kMaxPathLen = 4096;
}  // namespace

std::string ShardManifest::Path(const std::string& set_dir) {
  return set_dir + "/MANIFEST";
}

Status ShardManifest::Save(const std::string& set_dir) const {
  NDSS_RETURN_NOT_OK(ValidateShardDirs(shard_dirs));
  std::string data;
  PutFixed64(&data, kManifestMagicV2);
  PutFixed64(&data, epoch);
  PutFixed64(&data, applied_seqno);
  PutFixed32(&data, static_cast<uint32_t>(shard_dirs.size()));
  for (const std::string& dir : shard_dirs) {
    if (dir.size() > kMaxPathLen) {
      return Status::InvalidArgument("shard directory path too long: " + dir);
    }
    PutFixed32(&data, static_cast<uint32_t>(dir.size()));
    data.append(dir);
  }
  PutFixed32(&data, crc32c::Mask(crc32c::Value(data.data(), data.size())));
  NDSS_RETURN_NOT_OK(CreateDirectories(set_dir));
  return WriteStringToFileAtomic(Path(set_dir), data);
}

Result<ShardManifest> ShardManifest::Load(const std::string& set_dir) {
  const std::string path = Path(set_dir);
  NDSS_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kFixedPrefixV1 + kCrcSize) {
    return Status::Corruption("shard manifest truncated: " + path);
  }
  const uint64_t magic = DecodeFixed64(data.data());
  if (magic != kManifestMagicV1 && magic != kManifestMagicV2) {
    return Status::Corruption("bad shard manifest magic in " + path);
  }
  const bool has_seqno = magic == kManifestMagicV2;
  if (has_seqno && data.size() < kFixedPrefixV2 + kCrcSize) {
    return Status::Corruption("shard manifest truncated: " + path);
  }
  const uint32_t stored_crc =
      DecodeFixed32(data.data() + data.size() - kCrcSize);
  if (crc32c::Value(data.data(), data.size() - kCrcSize) !=
      crc32c::Unmask(stored_crc)) {
    return Status::Corruption("shard manifest checksum mismatch in " + path);
  }
  ShardManifest manifest;
  manifest.epoch = DecodeFixed64(data.data() + 8);
  if (has_seqno) manifest.applied_seqno = DecodeFixed64(data.data() + 16);
  const size_t fixed_prefix = has_seqno ? kFixedPrefixV2 : kFixedPrefixV1;
  const uint32_t num_shards = DecodeFixed32(data.data() + fixed_prefix - 4);
  size_t pos = fixed_prefix;
  const size_t body_end = data.size() - kCrcSize;
  for (uint32_t i = 0; i < num_shards; ++i) {
    if (pos + 4 > body_end) {
      return Status::Corruption("shard manifest truncated entry in " + path);
    }
    const uint32_t len = DecodeFixed32(data.data() + pos);
    pos += 4;
    if (len > kMaxPathLen || pos + len > body_end) {
      return Status::Corruption("shard manifest entry overruns " + path);
    }
    manifest.shard_dirs.emplace_back(data.data() + pos, len);
    pos += len;
  }
  if (pos != body_end) {
    return Status::Corruption("shard manifest has trailing bytes in " + path);
  }
  // The checksum proves the bytes are what Save wrote; the list validation
  // guards against a manifest written by hand (or a future buggy writer).
  NDSS_RETURN_NOT_OK(ValidateShardDirs(manifest.shard_dirs));
  return manifest;
}

std::string ResolveShardDir(const std::string& set_dir,
                            const std::string& entry) {
  if (!entry.empty() && entry.front() == '/') return entry;
  return set_dir + "/" + entry;
}

Result<IndexMeta> LoadShardMeta(const std::string& shard_dir) {
  NDSS_RETURN_NOT_OK(CheckIndexCommitMarker(shard_dir));
  return IndexMeta::Load(shard_dir);
}

Status ValidateShardMetas(const std::vector<IndexMeta>& metas,
                          const std::vector<std::string>& shard_dirs) {
  uint64_t num_texts = 0;
  for (size_t i = 0; i < metas.size(); ++i) {
    if (!SameSketchFamily(metas[i], metas[0])) {
      return Status::InvalidArgument(
          "shard " + shard_dirs[i] +
          " was built with different (k, seed, t, sketch scheme) than " +
          shard_dirs[0] + "; a shard set must share one sketch family");
    }
    num_texts += metas[i].num_texts;
  }
  if (num_texts > 0xffffffffULL) {
    return Status::InvalidArgument("shard set exceeds 2^32 texts");
  }
  return Status::OK();
}

}  // namespace ndss
