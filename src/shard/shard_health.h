#ifndef NDSS_SHARD_SHARD_HEALTH_H_
#define NDSS_SHARD_SHARD_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/searcher.h"

namespace ndss {

/// Health of one shard in a self-healing serving topology.
///
///       serve ok                    breaker trips / Corruption
///   ┌─────────────┐             ┌──────────────────────────────┐
///   ▼             │             │                              ▼
/// healthy ──► suspect ──────────┘        probe due        quarantined
///   ▲   transient failure                                   │    ▲
///   │                                                       ▼    │ probe
///   └────────────────────────────────────────────────── probing ─┘ fails
///                     probe succeeds (reopen)
///
/// kHealthy and kSuspect shards serve queries (a suspect shard has failed
/// recently but the circuit breaker has not tripped); kQuarantined and
/// kProbing shards are excluded from the serving set until the
/// HealthMonitor heals them.
enum class ShardHealth : int {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kProbing = 3,
};

/// Stable lower-case name for `health` (e.g. "quarantined"), for logs and
/// the ndss_shard status --json output.
const char* ShardHealthName(ShardHealth health);

/// Steady-clock microseconds (arbitrary epoch) — the time base every
/// ShardHealthTracker method takes, so callers and tests share one clock.
uint64_t SteadyNowMicros();

/// Circuit-breaker and probing thresholds for one shard set. The defaults
/// suit production serving; tests shrink the intervals to milliseconds.
struct ShardHealthOptions {
  /// Consecutive transient failures that trip the breaker (quarantine the
  /// shard). Corruption quarantines immediately regardless.
  uint32_t consecutive_failures_to_quarantine = 3;

  /// Error-rate breaker: quarantine when at least `error_rate_min_samples`
  /// of the last `error_rate_window` serve outcomes are recorded and the
  /// failure fraction reaches `error_rate_threshold`. Catches flaky-but-
  /// not-consecutive failure patterns the consecutive breaker misses.
  double error_rate_threshold = 0.5;
  uint32_t error_rate_window = 16;
  uint32_t error_rate_min_samples = 8;

  /// Delay from quarantine to the first recovery probe; doubles (x
  /// `probe_backoff_multiplier`) after every failed probe, capped at
  /// `max_probe_delay_micros`.
  uint64_t initial_probe_delay_micros = 100'000;
  double probe_backoff_multiplier = 2.0;
  uint64_t max_probe_delay_micros = 30'000'000;

  /// After this many consecutive failed probes the cheap probe (meta +
  /// index headers) escalates to a deep check that reads and CRC-verifies
  /// every posting list, fsck-style: a shard that keeps flapping gets a
  /// full physical once-over before it is trusted again.
  uint32_t deep_check_after_probes = 3;

  /// Wake-up granularity of the HealthMonitor thread. Probes fire on the
  /// first tick after their delay elapses.
  uint64_t monitor_poll_micros = 20'000;
};

/// Point-in-time copy of one shard's health, for observability
/// (ShardedSearcher::shards, ndss_shard status, bench/chaos reports).
struct ShardHealthSnapshot {
  ShardHealth state = ShardHealth::kHealthy;
  uint64_t transient_failures = 0;   ///< IOError-class serve failures seen
  uint64_t corruption_failures = 0;  ///< Corruption-class serve failures seen
  uint64_t drops = 0;        ///< queries this shard was excluded from
  uint64_t quarantines = 0;  ///< times the shard entered quarantine
  uint64_t reopens = 0;      ///< times a probe healed it back to serving
  uint64_t probes = 0;       ///< recovery probes attempted
  uint64_t probe_failures = 0;  ///< probes that failed (total)
  uint32_t consecutive_failures = 0;
  std::string last_error;  ///< most recent serve/probe failure, "" if none
};

/// Per-shard health state machine driven from two sides: the query path
/// reports serve outcomes (RecordSuccess / RecordFailure) and the
/// HealthMonitor drives quarantine probing (ProbeDue / BeginProbe /
/// ProbeSucceeded / ProbeFailed).
///
/// Error classification: Corruption means the shard is lying about its
/// data — quarantine immediately. Transient failures (IOError and anything
/// else non-governance) count against two circuit breakers (consecutive
/// and windowed error-rate); the shard keeps serving as kSuspect until one
/// trips. Governance statuses (deadline, cancel, budget) are the caller's
/// doing and must not be recorded at all.
///
/// Time is passed in as steady-clock microseconds so tests can drive the
/// machine deterministically. Thread-safe; every method may be called
/// concurrently from query threads and the monitor.
class ShardHealthTracker {
 public:
  explicit ShardHealthTracker(const ShardHealthOptions& options = {});

  /// Records a successful serve. A suspect shard heals to kHealthy and
  /// both breakers reset. No effect while quarantined/probing (a stale
  /// in-flight success must not short-circuit a probe).
  void RecordSuccess();

  /// Records a failed serve at `now_micros`. Returns true when this
  /// failure transitions the shard into quarantine (the caller excludes it
  /// from the serving set and kicks the monitor). Idempotent while already
  /// quarantined.
  bool RecordFailure(const Status& status, uint64_t now_micros);

  /// Counts one query answered without this shard (for the `drops`
  /// counter; the exclusion decision itself is the caller's).
  void RecordDrop();

  /// Quarantines immediately, bypassing the breakers — for faults where no
  /// suspect grace period makes sense, e.g. a shard that fails to open at
  /// all. Returns true when this call performed the transition (false if
  /// already quarantined/probing).
  bool Quarantine(const Status& cause, uint64_t now_micros);

  /// True when the shard is quarantined and its probe delay has elapsed.
  bool ProbeDue(uint64_t now_micros) const;

  /// True when the next probe should run the deep (full-CRC) check: either
  /// enough probes failed this quarantine, or the shard has flapped —
  /// re-entered quarantine after a cheap reopen — that many times since a
  /// deep probe last passed. The flap rule is what stops a shard whose
  /// posting lists are corrupt (headers fine, so cheap probes pass) from
  /// cycling reopen -> serve -> fail forever.
  bool DeepCheckDue() const;

  /// kQuarantined -> kProbing. Call before the (slow) probe IO so a
  /// concurrent snapshot sees the attempt; `deep` is what DeepCheckDue
  /// advised (a passing deep probe resets the flap escalation).
  void BeginProbe(bool deep);

  /// kProbing -> kHealthy; resets breakers and probe backoff.
  void ProbeSucceeded();

  /// kProbing -> kQuarantined; escalates the probe backoff.
  void ProbeFailed(const Status& status, uint64_t now_micros);

  ShardHealth state() const;

  /// True when the shard should be excluded from new queries' runnable
  /// sets (kQuarantined or kProbing).
  bool excluded() const;

  ShardHealthSnapshot Snapshot() const;

 private:
  /// Pushes one outcome into the error-rate window (lock held).
  void RecordOutcomeLocked(bool failed);

  /// Failure fraction over the window, or 0 before min samples (lock held).
  bool RateBreakerTrippedLocked() const;

  /// Enters quarantine at `now_micros` (lock held).
  void QuarantineLocked(uint64_t now_micros);

  const ShardHealthOptions options_;

  mutable std::mutex mu_;
  ShardHealth state_ = ShardHealth::kHealthy;
  std::vector<bool> window_;  ///< ring buffer of recent outcomes (true=fail)
  size_t window_next_ = 0;
  size_t window_filled_ = 0;
  uint32_t consecutive_failures_ = 0;
  uint64_t next_probe_micros_ = 0;
  uint64_t probe_delay_micros_ = 0;
  uint32_t probes_since_quarantine_ = 0;
  uint32_t quarantines_since_deep_ok_ = 0;
  bool probing_deep_ = false;
  uint64_t transient_failures_ = 0;
  uint64_t corruption_failures_ = 0;
  uint64_t drops_ = 0;
  uint64_t quarantines_ = 0;
  uint64_t reopens_ = 0;
  uint64_t probes_ = 0;
  uint64_t probe_failures_ = 0;
  std::string last_error_;
};

/// The recovery probe the HealthMonitor runs against a quarantined shard,
/// shared with `ndss_shard status` so operators can run exactly the check
/// the monitor applies. The cheap probe validates the commit marker, the
/// meta checksum, and every inverted-index file header by opening a full
/// Searcher; `deep` additionally reads and CRC-verifies every posting list
/// (fsck --deep's coverage). On success the returned Searcher is ready to
/// swap into the serving topology.
Result<Searcher> ProbeShard(const std::string& shard_dir,
                            const SearcherOptions& options, bool deep);

}  // namespace ndss

#endif  // NDSS_SHARD_SHARD_HEALTH_H_
