#ifndef NDSS_SHARD_SHARDED_SEARCHER_H_
#define NDSS_SHARD_SHARDED_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/status.h"
#include "index/index_meta.h"
#include "query/list_cache.h"
#include "query/searcher.h"
#include "shard/shard_health.h"
#include "shard/shard_manifest.h"
#include "text/types.h"

namespace ndss {

/// Options for opening a ShardedSearcher.
struct ShardedSearcherOptions {
  /// Passed to every per-shard Searcher::Open (function-level degradation
  /// within one shard).
  SearcherOptions shard_options;

  /// Shard-level fault isolation. At open: a shard whose index cannot be
  /// opened is dropped (with a warning) instead of failing Open, as long as
  /// at least one shard survives. At query time: a shard whose search fails
  /// with Corruption is dropped for the Searcher's lifetime and the query
  /// is answered by the survivors, with SearchStats::degraded_shards
  /// counting the exclusions. Text ids of the surviving shards do NOT
  /// shift: a dropped shard keeps its id range (its texts simply stop
  /// appearing in answers), unlike DetachShard which renumbers.
  bool allow_shard_drop = false;

  /// Self-healing serving. Implies shard-level isolation (as if
  /// `allow_shard_drop` were set) and extends it: ANY non-governance
  /// sub-query failure excludes that shard from that query's answer
  /// (`degraded_shards` counts it honestly) while a per-shard
  /// ShardHealthTracker classifies the error — Corruption quarantines the
  /// shard immediately, transient IOErrors only once a circuit breaker
  /// trips (consecutive or windowed error-rate; see ShardHealthOptions).
  /// A background HealthMonitor thread probes quarantined shards (cheap
  /// open + header/CRC validation, escalating to a deep full-list check
  /// after repeated failures) and atomically reopens recovered shards via
  /// the same epoch-guarded topology swap AttachShard uses — so a
  /// transient fault degrades answers instead of failing queries, and
  /// serving returns to exact (degraded_shards == 0) once the fault
  /// clears. Unlike an allow_shard_drop drop, quarantine is reversible.
  bool enable_self_healing = false;

  /// Breaker thresholds and probe cadence for self-healing (ignored unless
  /// `enable_self_healing`).
  ShardHealthOptions health;

  /// Worker threads for the scatter phase (each shard's sub-query runs on
  /// one). 0 = one per shard at open time, capped at the hardware
  /// concurrency. The pool is shared by every concurrent caller.
  size_t num_threads = 0;
};

/// One shard's place in the current topology, for observability.
struct ShardInfo {
  std::string dir;       ///< resolved index directory
  TextId text_offset;    ///< first global text id of this shard
  uint64_t num_texts;    ///< texts this shard contributes
  bool dropped;          ///< isolated after a corruption (still holds its
                         ///< id range; contributes nothing to answers)

  /// Live health of this shard. Under enable_self_healing this is the
  /// tracker's snapshot (state machine + drop/quarantine/reopen counters +
  /// last error); otherwise the counters stay zero and `health.state` just
  /// mirrors `dropped` (a legacy allow_shard_drop drop reads as a
  /// quarantine that never heals).
  ShardHealthSnapshot health;
};

/// Serves a ShardManifest's shard set as if it were one merged index,
/// without paying the merge.
///
///   NDSS_ASSIGN_OR_RETURN(ShardedSearcher s, ShardedSearcher::Open(dir));
///   NDSS_ASSIGN_OR_RETURN(SearchResult r, s.Search(query, options));
///
/// Search / governed Search / SearchBatch scatter the query over every
/// shard's proven single-shard path (in parallel on an internal pool),
/// remap each shard's local text ids into global ids using the
/// concatenation-offset semantics MergeIndexes documents, and concatenate
/// in shard order. Because shards partition the corpus by text and the
/// single-shard algorithm is exact per text, the merged `rectangles` and
/// `spans` are bit-identical to a Searcher over MergeIndexes({shards}) —
/// the equivalence the sharded_searcher_test proves. SearchStats are the
/// element-wise sum over shards (classification counters can differ from
/// the merged index's, since list lengths are per-shard), except:
/// `degraded_funcs` is the worst shard's count, `degraded_shards` counts
/// shards excluded from the answer, and `wall_seconds` is the end-to-end
/// scatter-gather latency.
///
/// Governance composes hierarchically: one deadline and cancel flag are
/// shared by every shard's sub-query, and each shard gets an accounting
/// arena parented to the query's MemoryBudget, so the caller's cap spans
/// the whole scatter. A shard returning DeadlineExceeded / Cancelled /
/// ResourceExhausted fails the query with that status while the merged
/// partial stats (and any partial matches) survive, mirroring the
/// single-shard partial-stats contract.
///
/// Topology changes are online: AttachShard / DetachShard durably commit a
/// new manifest (tmp + fsync + rename, epoch + 1) and then swap an
/// immutable topology snapshot. In-flight queries keep the snapshot they
/// started with — they finish on their epoch's shard list and id
/// numbering, and a detached shard's resources are released only when the
/// last such query completes.
///
/// Thread-safety: once opened, all Search/SearchBatch variants may be
/// called from any number of threads, concurrently with AttachShard /
/// DetachShard (topology changes serialize among themselves). Moving a
/// ShardedSearcher must not overlap with any in-flight call.
class ShardedSearcher {
 public:
  /// Opens the shard set described by `<set_dir>/MANIFEST`.
  static Result<ShardedSearcher> Open(
      const std::string& set_dir, const ShardedSearcherOptions& options = {});

  ShardedSearcher(ShardedSearcher&&) noexcept;
  ShardedSearcher& operator=(ShardedSearcher&&) noexcept;
  ~ShardedSearcher();

  /// Scatter-gather search over the current topology (see class comment
  /// for the merge semantics).
  Result<SearchResult> Search(std::span<const Token> query,
                              const SearchOptions& options);

  /// Governed variant: `ctx` (deadline, cancel flag, memory budget) is
  /// shared across every shard's sub-query; nullptr = ungoverned. On a
  /// governance failure the merged partial stats survive in `*result`.
  Status Search(std::span<const Token> query, const SearchOptions& options,
                const QueryContext* ctx, SearchResult* result);

  /// Batch scatter-gather: each shard runs the whole batch through its own
  /// shared list cache (`cache_budget_bytes` is split evenly across
  /// shards) with `num_threads` workers per shard, so total concurrency is
  /// about shards x num_threads. Per-query results across shards are
  /// merged exactly like Search. On error the whole batch fails with the
  /// lowest-index failing query's status.
  Result<std::vector<SearchResult>> SearchBatch(
      const std::vector<std::vector<Token>>& queries,
      const SearchOptions& options,
      uint64_t cache_budget_bytes = 256ull << 20, size_t num_threads = 1);

  /// Governed batch: one batch deadline is shared by every shard's
  /// sub-batch (computed once, passed as an absolute time), and one
  /// inflight budget spans every shard's cache and arenas via
  /// BatchLimits's composition hooks. Per-query deadlines are measured
  /// from each shard's pickup of the query. Per-query statuses merge like
  /// Search; BatchStats classify the merged outcomes.
  Result<BatchResult> SearchBatch(
      const std::vector<std::vector<Token>>& queries,
      const SearchOptions& options, const BatchLimits& limits,
      uint64_t cache_budget_bytes = 256ull << 20, size_t num_threads = 1);

  /// Opens `shard_dir`, validates it against the current topology (no
  /// duplicate, identical (k, seed, t), text-id headroom), durably commits
  /// the manifest with epoch + 1, then swaps the topology. The new shard's
  /// texts get ids starting at the previous topology's total.
  Status AttachShard(const std::string& shard_dir);

  /// Removes `shard_dir` (matched against manifest entries or their
  /// resolved paths) from the set: durably commits the shrunk manifest
  /// with epoch + 1, then swaps the topology. Remaining shards are
  /// renumbered by concatenation order, exactly as if the set had been
  /// created without the detached shard. The last shard cannot be
  /// detached. In-flight queries finish on the old topology.
  Status DetachShard(const std::string& shard_dir);

  // ---- streaming ingestion (see src/ingest/ingester.h) ----
  //
  // The Ingester serves its in-memory memtable through the topology as a
  // *delta*: a pseudo-shard appended after every sealed shard, whose texts
  // take the highest global ids. Queries scatter over sealed shards and
  // the delta alike, so search results over (sealed + delta) are exactly
  // what a batch build over the same documents would return. The delta is
  // not durable and never appears in the manifest — the WAL is its
  // durability, and `applied_seqno` records which prefix of the WAL the
  // sealed shards already contain.

  /// Installs (or with nullptr clears) the delta searcher. Not a durable
  /// topology change: the epoch and manifest stay put. The delta's
  /// (k, seed, t) must match the set's; its texts must fit in the 2^32 id
  /// space. In-flight queries keep the delta snapshot they started with.
  Status SetDelta(std::shared_ptr<Searcher> delta);

  /// Atomically commits a memtable spill: attaches the sealed shard at
  /// `shard_entry` (relative entries resolve against the set directory),
  /// durably commits the manifest with epoch + 1 and `applied_seqno`, and
  /// swaps the topology with `next_delta` (usually nullptr — the spilled
  /// memtable's replacement) in one step, so no query window ever sees the
  /// spilled documents twice (old delta + new shard) or not at all.
  Status PromoteDelta(const std::string& shard_entry,
                      std::shared_ptr<Searcher> next_delta,
                      uint64_t applied_seqno);

  /// Atomically commits a compaction: replaces the contiguous run of
  /// shards named by `shard_entries` (in topology order) with the single
  /// merged shard at `merged_entry`, preserving every global text id (the
  /// merged shard must hold exactly the run's texts, in order — the
  /// MergeIndexes contract). Commits the manifest with epoch + 1; the
  /// delta and applied_seqno pass through unchanged. Returns NotFound if
  /// the run no longer matches the current topology (a stale compaction
  /// plan after a concurrent attach/detach), in which case nothing
  /// changes.
  Status ReplaceShards(const std::vector<std::string>& shard_entries,
                       const std::string& merged_entry);

  // ---- cross-query list cache (see src/query/list_cache.h) ----

  /// Enables the cross-query posting-list cache: hot pass-1 lists stay
  /// decoded in memory across requests, bounded by `budget_bytes` and
  /// charged to `parent` (optionally — e.g. a server-wide MemoryBudget).
  /// Every shard (and the delta) gets an immutable owner id in the cache's
  /// keyspace; topology changes that retire a source (detach, reopen,
  /// compaction, a delta publish) retire its id, so stale entries are
  /// unreachable by construction and are garbage-collected eagerly.
  /// Answers are bit-identical with the cache on or off. Call once, before
  /// serving; InvalidArgument if already enabled.
  Status EnableListCache(uint64_t budget_bytes, MemoryBudget* parent = nullptr);

  /// The cache enabled above, for observability (nullptr when disabled).
  const CrossQueryListCache* list_cache() const;

  /// Highest WAL seqno contained in the sealed shards (see ShardManifest).
  uint64_t applied_seqno() const;

  /// Texts currently served from the delta memtable (0 when none is set).
  uint64_t delta_texts() const;

  /// The set directory this searcher serves.
  const std::string& set_dir() const;

  /// Epoch of the topology new queries will see.
  uint64_t epoch() const;

  /// Combined build parameters of the current topology: (k, seed, t) of
  /// the shared hash family, num_texts / total_tokens summed over shards
  /// (dropped shards included — they keep their id range).
  IndexMeta meta() const;

  /// Current topology, in concatenation order.
  std::vector<ShardInfo> shards() const;

 private:
  struct State;
  explicit ShardedSearcher(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace ndss

#endif  // NDSS_SHARD_SHARDED_SEARCHER_H_
