#include "eval/memorization_eval.h"

namespace ndss {

Result<MemorizationReport> EvaluateMemorization(
    Searcher& searcher, const std::vector<std::vector<Token>>& texts,
    const MemorizationEvalOptions& options) {
  if (options.window_width == 0) {
    return Status::InvalidArgument("window_width must be >= 1");
  }
  MemorizationReport report;
  const uint32_t x = options.window_width;
  // One query per non-overlapping window; processed as a batch so hot
  // inverted lists are read once (see Searcher::SearchBatch).
  std::vector<std::vector<Token>> queries;
  for (const std::vector<Token>& text : texts) {
    for (size_t begin = 0; begin + x <= text.size(); begin += x) {
      queries.emplace_back(text.begin() + begin, text.begin() + begin + x);
    }
  }
  NDSS_ASSIGN_OR_RETURN(std::vector<SearchResult> results,
                        searcher.SearchBatch(queries, options.search));
  report.windows = queries.size();
  for (const SearchResult& result : results) {
    if (!result.rectangles.empty()) ++report.memorized;
    report.total_io_seconds += result.stats.io_seconds;
    report.total_cpu_seconds += result.stats.cpu_seconds;
    report.total_io_bytes += result.stats.io_bytes;
  }
  if (report.windows > 0) {
    report.ratio = static_cast<double>(report.memorized) / report.windows;
  }
  return report;
}

}  // namespace ndss
