#ifndef NDSS_EVAL_MEMORIZATION_EVAL_H_
#define NDSS_EVAL_MEMORIZATION_EVAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "query/searcher.h"
#include "text/types.h"

namespace ndss {

/// Result of one memorization evaluation run (Section 5): the fraction of
/// fixed-width query windows taken from generated texts that have at least
/// one near-duplicate sequence in the training corpus.
struct MemorizationReport {
  uint64_t windows = 0;       ///< query sequences evaluated
  uint64_t memorized = 0;     ///< windows with >= 1 near-duplicate
  double ratio = 0.0;         ///< memorized / windows
  double total_io_seconds = 0;
  double total_cpu_seconds = 0;
  uint64_t total_io_bytes = 0;
};

/// Evaluation parameters.
struct MemorizationEvalOptions {
  /// Sliding-window width x: each generated text contributes the query
  /// sequences T[i·x, (i+1)·x - 1] (the paper evaluates x = 32, 64, 128).
  uint32_t window_width = 32;

  /// Near-duplicate search parameters for each window.
  SearchOptions search;
};

/// Slides non-overlapping windows of `options.window_width` tokens over
/// every generated text and reports the fraction with a near-duplicate in
/// the indexed training corpus.
Result<MemorizationReport> EvaluateMemorization(
    Searcher& searcher, const std::vector<std::vector<Token>>& texts,
    const MemorizationEvalOptions& options);

}  // namespace ndss

#endif  // NDSS_EVAL_MEMORIZATION_EVAL_H_
