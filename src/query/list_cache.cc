#include "query/list_cache.h"

namespace ndss {

CrossQueryListCache::CrossQueryListCache(uint64_t budget_bytes,
                                         MemoryBudget* parent)
    : budget_bytes_(budget_bytes),
      shard_budget_(budget_bytes / kShards),
      parent_(parent) {}

CrossQueryListCache::~CrossQueryListCache() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (parent_ != nullptr && shard.bytes > 0) parent_->Release(shard.bytes);
    shard.bytes = 0;
    shard.map.clear();
    shard.lru.clear();
  }
}

std::shared_ptr<CrossQueryListCache::Entry> CrossQueryListCache::GetOrCreate(
    const Key& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, created] = shard.map.try_emplace(key);
  if (created) {
    it->second.entry = std::make_shared<Entry>();
  } else if (it->second.resident) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  }
  return it->second.entry;
}

void CrossQueryListCache::RetireLocked(Shard& shard, Slot& slot) {
  shard.bytes -= slot.entry->bytes;
  if (parent_ != nullptr) parent_->Release(slot.entry->bytes);
  shard.lru.erase(slot.lru_it);
  slot.resident = false;
}

bool CrossQueryListCache::Commit(const Key& key,
                                 const std::shared_ptr<Entry>& entry) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.entry != entry) {
    // EraseOwner raced the load and already dropped this key: the source
    // is retired, so do not re-insert — the entry stays usable by the
    // queries that hold it and dies with them.
    return false;
  }
  const uint64_t need = entry->bytes;
  if (need > shard_budget_) {
    shard.map.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (shard.bytes + need > shard_budget_ && !shard.lru.empty()) {
    const Key victim_key = shard.lru.back();
    auto victim = shard.map.find(victim_key);
    RetireLocked(shard, victim->second);
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (shard.bytes + need > shard_budget_) {
    // Loading entries (not yet resident) cannot be evicted; retry later.
    shard.map.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (parent_ != nullptr && !parent_->Charge(need).ok()) {
    // The server-wide budget is exhausted by other subsystems: serve the
    // current holders but do not retain.
    shard.map.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.bytes += need;
  shard.lru.push_front(key);
  it->second.lru_it = shard.lru.begin();
  it->second.resident = true;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CrossQueryListCache::Abandon(const Key& key,
                                  const std::shared_ptr<Entry>& entry) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.entry != entry) return;
  if (it->second.resident) RetireLocked(shard, it->second);
  shard.map.erase(it);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void CrossQueryListCache::EraseOwner(uint64_t owner) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.owner != owner) {
        ++it;
        continue;
      }
      if (it->second.resident) RetireLocked(shard, it->second);
      it = shard.map.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

CrossQueryListCache::Counters CrossQueryListCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.insertions = insertions_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    c.bytes_used += shard.bytes;
    c.entries += shard.map.size();
  }
  return c;
}

}  // namespace ndss
