#include "query/searcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "index/inverted_index_reader.h"
#include "index/memory_index.h"

namespace ndss {

Searcher::Searcher(IndexMeta meta, HashFamily family,
                   std::vector<std::unique_ptr<InvertedListSource>> sources)
    : meta_(meta), family_(std::move(family)), sources_(std::move(sources)) {}

Result<Searcher> Searcher::Open(const std::string& dir,
                                const SearcherOptions& options) {
  // A directory without the commit marker is an interrupted build: some
  // files may be missing or stale even if the ones present look healthy.
  NDSS_RETURN_NOT_OK(CheckIndexCommitMarker(dir));
  NDSS_ASSIGN_OR_RETURN(IndexMeta meta, IndexMeta::Load(dir));
  std::vector<std::unique_ptr<InvertedListSource>> sources;
  sources.reserve(meta.k);
  uint32_t healthy = 0;
  for (uint32_t func = 0; func < meta.k; ++func) {
    const std::string path = IndexMeta::InvertedIndexPath(dir, func);
    Result<InvertedIndexReader> reader = InvertedIndexReader::Open(path);
    if (!reader.ok()) {
      if (!options.allow_degraded) return reader.status();
      NDSS_LOG(kWarning) << "degraded open: dropping " << path << ": "
                         << reader.status().ToString();
      sources.push_back(nullptr);
      continue;
    }
    if (reader->func() != func) {
      return Status::Corruption("inverted index func id mismatch in " + dir);
    }
    sources.push_back(
        std::make_unique<InvertedIndexReader>(std::move(*reader)));
    ++healthy;
  }
  if (healthy == 0) {
    return Status::Corruption("no healthy inverted-index file in " + dir);
  }
  return Searcher(meta, HashFamily(meta.k, meta.seed), std::move(sources));
}

Result<Searcher> Searcher::InMemory(const Corpus& corpus,
                                    const IndexBuildOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.t == 0) return Status::InvalidArgument("t must be >= 1");
  const HashFamily family(options.k, options.seed);
  std::vector<std::unique_ptr<InvertedListSource>> sources;
  sources.reserve(options.k);
  for (uint32_t func = 0; func < options.k; ++func) {
    sources.push_back(std::make_unique<InMemoryInvertedIndex>(
        corpus, family, func, options.t, options.window_method));
  }
  IndexMeta meta;
  meta.k = options.k;
  meta.seed = options.seed;
  meta.t = options.t;
  meta.num_texts = corpus.num_texts();
  meta.total_tokens = corpus.total_tokens();
  return Searcher(meta, family, std::move(sources));
}

uint32_t Searcher::degraded_funcs() const {
  uint32_t dropped = 0;
  for (const auto& source : sources_) {
    if (source == nullptr) ++dropped;
  }
  return dropped;
}

uint64_t Searcher::ListCountPercentile(double fraction) const {
  std::vector<uint64_t> counts;
  for (const auto& source : sources_) {
    if (source == nullptr) continue;
    for (const ListMeta& meta : source->directory()) {
      counts.push_back(meta.count);
    }
  }
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
  const size_t num_long = static_cast<size_t>(
      std::floor(fraction * static_cast<double>(counts.size())));
  if (num_long == 0) return counts[0];  // nothing classified long
  if (num_long >= counts.size()) return 0;
  return counts[num_long];  // lists strictly longer than this are "long"
}

namespace {

/// Collision totals can never reach beta for a text whose group is smaller,
/// so groups below the threshold are skipped without running Algorithm 4.
struct TextGroup {
  TextId text;
  std::vector<PostedWindow> windows;
};

void GroupByText(std::vector<PostedWindow>& windows,
                 std::vector<TextGroup>* groups, uint32_t min_size) {
  std::sort(windows.begin(), windows.end(),
            [](const PostedWindow& a, const PostedWindow& b) {
              if (a.text != b.text) return a.text < b.text;
              return a.l < b.l;
            });
  size_t i = 0;
  while (i < windows.size()) {
    size_t j = i;
    while (j < windows.size() && windows[j].text == windows[i].text) ++j;
    if (j - i >= min_size) {
      TextGroup group;
      group.text = windows[i].text;
      group.windows.assign(windows.begin() + i, windows.begin() + j);
      groups->push_back(std::move(group));
    }
    i = j;
  }
}

}  // namespace

std::vector<MatchSpan> MergeRectangles(
    std::vector<TextMatchRectangle> rectangles, uint32_t t, uint32_t k) {
  std::vector<MatchSpan> spans;
  // Raw spans: a rectangle contains a sequence of length >= t iff its
  // longest sequence [x_begin, y_end] is long enough; the union of its
  // sequences covers exactly [x_begin, y_end].
  std::vector<MatchSpan> raw;
  raw.reserve(rectangles.size());
  for (const TextMatchRectangle& tr : rectangles) {
    const MatchRectangle& r = tr.rect;
    if (r.y_end < r.x_begin || r.y_end - r.x_begin + 1 < t) continue;
    raw.push_back(MatchSpan{tr.text, r.x_begin, r.y_end, r.collisions,
                            static_cast<double>(r.collisions) / k});
  }
  std::sort(raw.begin(), raw.end(), [](const MatchSpan& a, const MatchSpan& b) {
    if (a.text != b.text) return a.text < b.text;
    return a.begin < b.begin;
  });
  for (const MatchSpan& span : raw) {
    if (!spans.empty() && spans.back().text == span.text &&
        span.begin <= spans.back().end + 1) {
      spans.back().end = std::max(spans.back().end, span.end);
      if (span.collisions > spans.back().collisions) {
        spans.back().collisions = span.collisions;
        spans.back().estimated_similarity = span.estimated_similarity;
      }
    } else {
      spans.push_back(span);
    }
  }
  return spans;
}

/// Per-batch cache of fully read pass-1 lists, keyed by (func, min-hash
/// key). Bounded by a byte budget; lists beyond it are read directly.
struct Searcher::ListCache {
  std::unordered_map<uint64_t, std::vector<PostedWindow>> lists;
  uint64_t bytes = 0;
  uint64_t budget = 0;

  static uint64_t Key(uint32_t func, Token token) {
    return (static_cast<uint64_t>(func) << 32) | token;
  }
};

Result<SearchResult> Searcher::Search(std::span<const Token> query,
                                      const SearchOptions& options) {
  return SearchInternal(query, options, nullptr);
}

Result<std::vector<SearchResult>> Searcher::SearchBatch(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& options, uint64_t cache_budget_bytes) {
  ListCache cache;
  cache.budget = cache_budget_bytes;
  std::vector<SearchResult> results;
  results.reserve(queries.size());
  for (const auto& query : queries) {
    NDSS_ASSIGN_OR_RETURN(SearchResult result,
                          SearchInternal(query, options, &cache));
    results.push_back(std::move(result));
  }
  return results;
}

Result<SearchResult> Searcher::SearchInternal(std::span<const Token> query,
                                              const SearchOptions& options,
                                              ListCache* cache) {
  constexpr uint32_t kNoFunc = 0xffffffffu;
  for (;;) {
    uint32_t failed_func = kNoFunc;
    Result<SearchResult> result =
        SearchOnce(query, options, cache, &failed_func);
    if (result.ok() || failed_func == kNoFunc || !options.allow_degraded) {
      return result;
    }
    // A list failed its checksum mid-query. Drop the whole function — its
    // file is corrupt — and answer with the survivors at rescaled β.
    NDSS_LOG(kWarning) << "degraded search: dropping hash function "
                       << failed_func << ": "
                       << result.status().ToString();
    sources_[failed_func] = nullptr;
  }
}

Result<SearchResult> Searcher::SearchOnce(std::span<const Token> query,
                                          const SearchOptions& options,
                                          ListCache* cache,
                                          uint32_t* failed_func) {
  if (query.empty()) {
    return Status::InvalidArgument("query sequence is empty");
  }
  if (options.theta <= 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  const uint32_t k = meta_.k;
  const uint32_t dropped = degraded_funcs();
  if (dropped > 0 && !options.allow_degraded) {
    return Status::Corruption(
        std::to_string(dropped) +
        " of " + std::to_string(k) +
        " index files are corrupt or missing; set "
        "SearchOptions::allow_degraded to search with the survivors");
  }
  // Effective family size k' = k - dropped. The hash family's seeds are
  // chained, so the surviving functions compute exactly what an index built
  // with fewer functions would; β is rescaled to ⌈θk'⌉ accordingly.
  const uint32_t k_eff = k - dropped;
  if (k_eff == 0) {
    return Status::Corruption("every index file is corrupt or missing");
  }
  const uint32_t beta = std::min<uint32_t>(
      k_eff, static_cast<uint32_t>(std::ceil(options.theta * k_eff)));

  SearchResult result;
  result.stats.degraded_funcs = dropped;
  const uint64_t io_bytes_before = [&] {
    uint64_t total = 0;
    for (const auto& source : sources_) {
      if (source != nullptr) total += source->bytes_read();
    }
    return total;
  }();

  Stopwatch cpu;
  const MinHashSketch sketch =
      ComputeSketch(family_, query.data(), query.size());
  result.stats.cpu_seconds += cpu.ElapsedSeconds();

  // Classify the k lists. Absent keys contribute nothing and count as
  // scanned-short (they cost no IO). Under prefix filtering at most
  // beta - 1 lists may be skipped, or the first-pass threshold would drop
  // to zero; if more exceed the length threshold, the shortest of them are
  // demoted to the scan set.
  struct ListRef {
    uint32_t func;
    const ListMeta* meta;
  };
  std::vector<ListRef> short_lists;
  std::vector<ListRef> long_lists;
  std::vector<const ListMeta*> metas(k, nullptr);
  for (uint32_t func = 0; func < k; ++func) {
    if (sources_[func] == nullptr) continue;  // dropped (degraded)
    metas[func] = sources_[func]->FindList(sketch.argmin_tokens[func]);
    if (metas[func] == nullptr) ++result.stats.empty_lists;
  }
  if (options.use_prefix_filter && options.use_cost_model) {
    // Cost-model selection of the deferred lists.
    std::vector<uint64_t> counts(k, 0);
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] != nullptr) counts[func] = metas[func]->count;
    }
    const std::vector<bool> deferred = SelectDeferredLists(
        counts, beta, static_cast<double>(sizeof(PostedWindow)),
        options.cost_model);
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] == nullptr) continue;
      if (deferred[func]) {
        long_lists.push_back({func, metas[func]});
      } else {
        short_lists.push_back({func, metas[func]});
      }
    }
  } else {
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] == nullptr) continue;
      if (options.use_prefix_filter &&
          metas[func]->count > options.long_list_threshold) {
        long_lists.push_back({func, metas[func]});
      } else {
        short_lists.push_back({func, metas[func]});
      }
    }
  }
  if (long_lists.size() > beta - 1) {
    std::sort(long_lists.begin(), long_lists.end(),
              [](const ListRef& a, const ListRef& b) {
                return a.meta->count < b.meta->count;
              });
    while (long_lists.size() > beta - 1) {
      short_lists.push_back(long_lists.front());
      long_lists.erase(long_lists.begin());
    }
  }
  result.stats.short_lists = static_cast<uint32_t>(short_lists.size());
  result.stats.long_lists = static_cast<uint32_t>(long_lists.size());
  const uint32_t beta1 = beta - static_cast<uint32_t>(long_lists.size());

  // Pass 1: scan the short lists fully, through the batch cache if one is
  // active (each distinct list is read from disk at most once per batch).
  Stopwatch io;
  std::vector<PostedWindow> windows;
  for (const ListRef& ref : short_lists) {
    if (cache != nullptr) {
      const uint64_t key = ListCache::Key(ref.func, ref.meta->key);
      auto it = cache->lists.find(key);
      if (it != cache->lists.end()) {
        windows.insert(windows.end(), it->second.begin(), it->second.end());
        ++result.stats.cache_hits;
        continue;
      }
      const uint64_t list_bytes = ref.meta->count * sizeof(PostedWindow);
      if (cache->bytes + list_bytes <= cache->budget) {
        std::vector<PostedWindow> list;
        list.reserve(ref.meta->count);
        Status read = sources_[ref.func]->ReadList(*ref.meta, &list);
        if (!read.ok()) {
          if (read.IsCorruption()) *failed_func = ref.func;
          return read;
        }
        windows.insert(windows.end(), list.begin(), list.end());
        cache->bytes += list_bytes;
        cache->lists.emplace(key, std::move(list));
        continue;
      }
    }
    Status read = sources_[ref.func]->ReadList(*ref.meta, &windows);
    if (!read.ok()) {
      if (read.IsCorruption()) *failed_func = ref.func;
      return read;
    }
  }
  result.stats.io_seconds += io.ElapsedSeconds();
  result.stats.windows_scanned += windows.size();

  cpu.Restart();
  std::vector<TextGroup> groups;
  GroupByText(windows, &groups, beta1);
  std::vector<MatchRectangle> rects;
  std::vector<TextGroup> candidates;
  for (TextGroup& group : groups) {
    rects.clear();
    CollisionCount(group.windows, beta1, &rects);
    if (rects.empty()) continue;
    if (long_lists.empty()) {
      // No second pass: these rectangles are final.
      for (const MatchRectangle& r : rects) {
        result.rectangles.push_back({group.text, r});
      }
    } else {
      candidates.push_back(std::move(group));
    }
  }
  result.stats.cpu_seconds += cpu.ElapsedSeconds();

  // Pass 2: candidates probe the long lists through zone maps, then rerun
  // CollisionCount with the full threshold beta.
  result.stats.candidate_texts = candidates.size();
  for (TextGroup& group : candidates) {
    io.Restart();
    for (const ListRef& ref : long_lists) {
      Status read = sources_[ref.func]->ReadWindowsForText(
          *ref.meta, group.text, &group.windows);
      if (!read.ok()) {
        if (read.IsCorruption()) *failed_func = ref.func;
        return read;
      }
    }
    result.stats.io_seconds += io.ElapsedSeconds();
    cpu.Restart();
    result.stats.windows_scanned += group.windows.size();
    rects.clear();
    CollisionCount(group.windows, beta, &rects);
    for (const MatchRectangle& r : rects) {
      result.rectangles.push_back({group.text, r});
    }
    result.stats.cpu_seconds += cpu.ElapsedSeconds();
  }

  // Length clamp + merged disjoint spans (the paper's Remark).
  cpu.Restart();
  if (options.merge_matches) {
    result.spans = MergeRectangles(result.rectangles, meta_.t, k_eff);
  }
  result.stats.cpu_seconds += cpu.ElapsedSeconds();

  uint64_t io_bytes_after = 0;
  for (const auto& source : sources_) {
    if (source != nullptr) io_bytes_after += source->bytes_read();
  }
  result.stats.io_bytes = io_bytes_after - io_bytes_before;
  return result;
}

}  // namespace ndss
