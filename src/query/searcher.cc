#include "query/searcher.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include <chrono>

#include "common/logging.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/inverted_index_reader.h"
#include "index/memory_index.h"
#include "query/list_cache.h"
#include "query/radix_sort.h"

namespace ndss {

namespace {

/// True for outcomes imposed by the caller's QueryContext rather than by
/// the data: they say nothing about the health of a list or a file.
bool IsGovernanceStatus(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled() ||
         status.IsResourceExhausted();
}

/// Reads a whole list under the options' retry policy. A failed attempt
/// rewinds `out` so the retry does not duplicate windows; governance errors
/// are not retryable (IsRetryableStatus) and propagate immediately.
Status ReadListRetrying(InvertedListSource* source, const ListMeta& meta,
                        std::vector<PostedWindow>* out, uint64_t* io_bytes,
                        const QueryContext* ctx, const RetryPolicy& policy) {
  const size_t before = out->size();
  auto op = [&]() -> Status {
    Status status = source->ReadList(meta, out, io_bytes, ctx);
    if (!status.ok()) out->resize(before);
    return status;
  };
  if (policy.max_attempts <= 1) return op();
  return RunWithRetry(policy, op, nullptr, ctx);
}

/// ReadWindowsForText counterpart of ReadListRetrying.
Status ReadWindowsForTextRetrying(InvertedListSource* source,
                                  const ListMeta& meta, TextId text,
                                  std::vector<PostedWindow>* out,
                                  uint64_t* io_bytes, const QueryContext* ctx,
                                  const RetryPolicy& policy) {
  const size_t before = out->size();
  auto op = [&]() -> Status {
    Status status = source->ReadWindowsForText(meta, text, out, io_bytes, ctx);
    if (!status.ok()) out->resize(before);
    return status;
  };
  if (policy.max_attempts <= 1) return op();
  return RunWithRetry(policy, op, nullptr, ctx);
}

}  // namespace

/// Mid-query degradation state, shared by all threads querying one
/// Searcher. A dropped function's source object stays alive (in-flight
/// queries may still hold a pointer to it from their snapshot); it is just
/// excluded from every snapshot taken after the drop.
struct Searcher::DegradedState {
  mutable std::mutex mu;
  std::vector<char> dropped;  ///< 1 = function dropped after a read failure
};

Searcher::Searcher(IndexMeta meta, SketchScheme scheme,
                   std::vector<std::unique_ptr<InvertedListSource>> sources)
    : meta_(meta),
      scheme_(std::move(scheme)),
      sources_(std::move(sources)),
      degraded_(std::make_unique<DegradedState>()) {
  degraded_->dropped.assign(sources_.size(), 0);
}

Searcher::Searcher(Searcher&&) noexcept = default;
Searcher& Searcher::operator=(Searcher&&) noexcept = default;
Searcher::~Searcher() = default;

std::vector<InvertedListSource*> Searcher::SnapshotSources() const {
  std::vector<InvertedListSource*> out(sources_.size(), nullptr);
  std::lock_guard<std::mutex> lock(degraded_->mu);
  for (size_t func = 0; func < sources_.size(); ++func) {
    if (sources_[func] != nullptr && degraded_->dropped[func] == 0) {
      out[func] = sources_[func].get();
    }
  }
  return out;
}

void Searcher::DropFunc(uint32_t func, const Status& cause) {
  std::lock_guard<std::mutex> lock(degraded_->mu);
  if (func >= degraded_->dropped.size() || degraded_->dropped[func] != 0) {
    return;  // concurrent query already dropped it
  }
  degraded_->dropped[func] = 1;
  NDSS_LOG(kWarning) << "degraded search: dropping hash function " << func
                     << ": " << cause.ToString();
}

Result<Searcher> Searcher::Open(const std::string& dir,
                                const SearcherOptions& options) {
  // A directory without the commit marker is an interrupted build: some
  // files may be missing or stale even if the ones present look healthy.
  NDSS_RETURN_NOT_OK(CheckIndexCommitMarker(dir));
  NDSS_ASSIGN_OR_RETURN(IndexMeta meta, IndexMeta::Load(dir));
  std::vector<std::unique_ptr<InvertedListSource>> sources;
  sources.reserve(meta.k);
  uint32_t healthy = 0;
  for (uint32_t func = 0; func < meta.k; ++func) {
    const std::string path = IndexMeta::InvertedIndexPath(dir, func);
    Result<InvertedIndexReader> reader = InvertedIndexReader::Open(path);
    if (!reader.ok()) {
      if (!options.allow_degraded) return reader.status();
      NDSS_LOG(kWarning) << "degraded open: dropping " << path << ": "
                         << reader.status().ToString();
      sources.push_back(nullptr);
      continue;
    }
    if (reader->func() != func) {
      // The file passed its checksums but belongs to another slot (e.g. it
      // was copied over the right file): its postings would be computed
      // with the wrong hash function, so it is as unusable as a corrupt
      // file and gets the same degraded treatment.
      const Status mismatch = Status::Corruption(
          "inverted index func id mismatch in " + path + ": file says " +
          std::to_string(reader->func()) + ", slot is " +
          std::to_string(func));
      if (!options.allow_degraded) return mismatch;
      NDSS_LOG(kWarning) << "degraded open: dropping " << path << ": "
                         << mismatch.ToString();
      sources.push_back(nullptr);
      continue;
    }
    sources.push_back(
        std::make_unique<InvertedIndexReader>(std::move(*reader)));
    ++healthy;
  }
  if (healthy == 0) {
    return Status::Corruption("no healthy inverted-index file in " + dir);
  }
  return Searcher(meta, meta.Scheme(), std::move(sources));
}

Result<Searcher> Searcher::InMemory(const Corpus& corpus,
                                    const IndexBuildOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.t == 0) return Status::InvalidArgument("t must be >= 1");
  const SketchScheme scheme(options.sketch, options.k, options.seed);
  // C-MinHash: one shared hashing pass feeds all k per-function builds.
  const CorpusBaseRows base_rows =
      CorpusBaseRows::Build(scheme, corpus, options.num_threads);
  std::vector<std::unique_ptr<InvertedListSource>> sources;
  sources.reserve(options.k);
  for (uint32_t func = 0; func < options.k; ++func) {
    sources.push_back(std::make_unique<InMemoryInvertedIndex>(
        corpus, scheme, func, options.t, options.window_method, &base_rows));
  }
  IndexMeta meta;
  meta.k = options.k;
  meta.seed = options.seed;
  meta.t = options.t;
  meta.num_texts = corpus.num_texts();
  meta.total_tokens = corpus.total_tokens();
  meta.sketch = options.sketch;
  return Searcher(meta, scheme, std::move(sources));
}

uint32_t Searcher::degraded_funcs() const {
  std::lock_guard<std::mutex> lock(degraded_->mu);
  uint32_t dropped = 0;
  for (size_t func = 0; func < sources_.size(); ++func) {
    if (sources_[func] == nullptr || degraded_->dropped[func] != 0) ++dropped;
  }
  return dropped;
}

uint64_t Searcher::TotalWindows() const {
  uint64_t total = 0;
  for (InvertedListSource* source : SnapshotSources()) {
    if (source == nullptr) continue;
    for (const ListMeta& meta : source->directory()) total += meta.count;
  }
  return total;
}

uint64_t Searcher::ListCountPercentile(double fraction) const {
  std::vector<uint64_t> counts;
  uint64_t total_windows = 0;
  for (InvertedListSource* source : SnapshotSources()) {
    if (source == nullptr) continue;
    for (const ListMeta& meta : source->directory()) {
      counts.push_back(meta.count);
      total_windows += meta.count;
    }
  }
  if (counts.empty() || total_windows == 0) return 0;
  // The contract is about windows, not lists: under a Zipfian token
  // distribution the few head lists hold most windows, so a list-counted
  // percentile would put far more than `fraction` of the windows into the
  // "long" class. Walk lists from the longest, accumulating their window
  // counts, and stop at the first threshold whose strictly-longer lists
  // hold at most `fraction` of all windows. Ties share a threshold, so the
  // walk moves one distinct count value at a time.
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
  const double budget = fraction * static_cast<double>(total_windows);
  uint64_t long_windows = 0;
  size_t i = 0;
  while (i < counts.size()) {
    const uint64_t count = counts[i];
    uint64_t group_windows = 0;
    size_t j = i;
    while (j < counts.size() && counts[j] == count) {
      group_windows += count;
      ++j;
    }
    if (static_cast<double>(long_windows + group_windows) > budget) {
      // Classifying this group long would exceed the budget; with the
      // threshold at `count`, the group (count == threshold) stays short.
      return count;
    }
    long_windows += group_windows;
    i = j;
  }
  return 0;  // every list can be long without exceeding the budget
}

namespace {

/// Collision totals can never reach beta for a text whose group is smaller,
/// so groups below the threshold are skipped without running Algorithm 4.
struct TextGroup {
  TextId text;
  std::vector<PostedWindow> windows;
};

void GroupByText(std::vector<PostedWindow>& windows,
                 std::vector<TextGroup>* groups, uint32_t min_size) {
  // (text, l) order as one radix pass over packed 64-bit keys; for the
  // Zipfian pass-1 window counts this sort dominated the CPU profile.
  // CollisionCount's output is invariant to the order of same-(text, l)
  // windows, so the stability change from std::sort is unobservable.
  RadixSortByKey(&windows, [](const PostedWindow& w) {
    return (static_cast<uint64_t>(w.text) << 32) | w.l;
  });
  size_t i = 0;
  while (i < windows.size()) {
    size_t j = i;
    while (j < windows.size() && windows[j].text == windows[i].text) ++j;
    if (j - i >= min_size) {
      TextGroup group;
      group.text = windows[i].text;
      group.windows.assign(windows.begin() + i, windows.begin() + j);
      groups->push_back(std::move(group));
    }
    i = j;
  }
}

}  // namespace

std::vector<MatchSpan> MergeRectangles(
    std::vector<TextMatchRectangle> rectangles, uint32_t t, uint32_t k) {
  std::vector<MatchSpan> spans;
  // Raw spans: a rectangle contains a sequence of length >= t iff its
  // longest sequence [x_begin, y_end] is long enough; the union of its
  // sequences covers exactly [x_begin, y_end].
  std::vector<MatchSpan> raw;
  raw.reserve(rectangles.size());
  for (const TextMatchRectangle& tr : rectangles) {
    const MatchRectangle& r = tr.rect;
    if (r.y_end < r.x_begin || r.y_end - r.x_begin + 1 < t) continue;
    raw.push_back(MatchSpan{tr.text, r.x_begin, r.y_end, r.collisions,
                            static_cast<double>(r.collisions) / k});
  }
  RadixSortByKey(&raw, [](const MatchSpan& s) {
    return (static_cast<uint64_t>(s.text) << 32) | s.begin;
  });
  for (const MatchSpan& span : raw) {
    if (!spans.empty() && spans.back().text == span.text &&
        span.begin <= spans.back().end + 1) {
      spans.back().end = std::max(spans.back().end, span.end);
      if (span.collisions > spans.back().collisions) {
        spans.back().collisions = span.collisions;
        spans.back().estimated_similarity = span.estimated_similarity;
      }
    } else {
      spans.push_back(span);
    }
  }
  return spans;
}

/// Per-batch cache of fully read pass-1 lists, keyed by (func, min-hash
/// key). Bounded by a byte budget; lists beyond it are read directly.
///
/// Sharded for concurrent SearchBatch workers: a shard mutex only guards
/// map lookup/insert, while each entry's std::once_flag serializes the
/// actual disk read, preserving the batch guarantee that every distinct
/// list is read at most once no matter how many threads want it. After
/// call_once returns, the entry is immutable and read lock-free.
struct Searcher::ListCache {
  struct Entry {
    std::once_flag once;
    std::vector<PostedWindow> windows;
    Status status = Status::OK();
    bool stored = false;  ///< read succeeded and fit within the budget
  };

  /// Stored entries hold their Reserve charge until the batch ends; give it
  /// back when the cache dies, or the bytes leak into the batch's inflight
  /// budget ancestry (limits.inflight_parent) and strangle later batches.
  /// Safe because the cache is declared after the inflight budget in
  /// SearchBatch, so it is destroyed first.
  ~ListCache() {
    if (inflight != nullptr) {
      inflight->Release(bytes.load(std::memory_order_relaxed));
    }
  }

  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> map;
  };
  Shard shards[kShards];
  std::atomic<uint64_t> bytes{0};
  uint64_t budget = 0;
  /// Optional batch-wide inflight budget (governed SearchBatch): cached
  /// list bytes are accounted there alongside the per-query arenas.
  MemoryBudget* inflight = nullptr;
  /// Optional cross-query cache, consulted before this batch cache (see
  /// BatchLimits::shared_cache). Lists it serves or loads never enter the
  /// batch cache — the shared cache already dedupes the read.
  CrossQueryListCache* shared = nullptr;
  uint64_t shared_owner = 0;

  static uint64_t Key(uint32_t func, Token token) {
    return (static_cast<uint64_t>(func) << 32) | token;
  }

  std::shared_ptr<Entry> GetOrCreate(uint64_t key) {
    Shard& shard = shards[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::shared_ptr<Entry>& entry = shard.map[key];
    if (entry == nullptr) entry = std::make_shared<Entry>();
    return entry;
  }

  /// Drops `key` iff it still maps to `entry`, so a later query can retry
  /// the load. Used when a loader's own governance failure (deadline,
  /// cancel, budget) poisoned the entry: that failure says nothing about
  /// the list and must not fail other queries.
  void Invalidate(uint64_t key, const std::shared_ptr<Entry>& entry) {
    Shard& shard = shards[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
  }

  /// Reserves `size` bytes of the budget; false when it does not fit (or
  /// the batch inflight cap is reached — the list is then read directly).
  bool Reserve(uint64_t size) {
    uint64_t current = bytes.load(std::memory_order_relaxed);
    while (current + size <= budget) {
      if (bytes.compare_exchange_weak(current, current + size,
                                      std::memory_order_relaxed)) {
        if (inflight != nullptr && !inflight->Charge(size).ok()) {
          bytes.fetch_sub(size, std::memory_order_relaxed);
          return false;
        }
        return true;
      }
    }
    return false;
  }

  void Unreserve(uint64_t size) {
    bytes.fetch_sub(size, std::memory_order_relaxed);
    if (inflight != nullptr) inflight->Release(size);
  }
};

Result<SearchResult> Searcher::Search(std::span<const Token> query,
                                      const SearchOptions& options) {
  SearchResult result;
  NDSS_RETURN_NOT_OK(
      SearchInternal(query, options, nullptr, nullptr, &result));
  return result;
}

Status Searcher::Search(std::span<const Token> query,
                        const SearchOptions& options, const QueryContext* ctx,
                        SearchResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must be non-null");
  }
  *result = SearchResult();
  return SearchInternal(query, options, nullptr, ctx, result);
}

Status Searcher::Search(std::span<const Token> query,
                        const SearchOptions& options, const QueryContext* ctx,
                        CrossQueryListCache* shared_cache,
                        uint64_t shared_cache_owner, SearchResult* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("result must be non-null");
  }
  *result = SearchResult();
  if (shared_cache == nullptr || shared_cache_owner == 0) {
    return SearchInternal(query, options, nullptr, ctx, result);
  }
  // A budget-0 batch cache retains nothing itself (every Reserve fails, so
  // lists the shared cache does not serve are read directly); it only
  // carries the cross-query cache into the pass-1 loop.
  ListCache cache;
  cache.shared = shared_cache;
  cache.shared_owner = shared_cache_owner;
  return SearchInternal(query, options, &cache, ctx, result);
}

Result<std::vector<SearchResult>> Searcher::SearchBatch(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& options, uint64_t cache_budget_bytes,
    size_t num_threads) {
  NDSS_ASSIGN_OR_RETURN(
      BatchResult batch, SearchBatch(queries, options, BatchLimits{},
                                     cache_budget_bytes, num_threads));
  // Preserve the ungoverned contract: all queries run, and with several
  // failures the lowest-index status is returned.
  for (const Status& status : batch.statuses) {
    if (!status.ok()) return status;
  }
  return std::move(batch.results);
}

Result<BatchResult> Searcher::SearchBatch(
    const std::vector<std::vector<Token>>& queries,
    const SearchOptions& options, const BatchLimits& limits,
    uint64_t cache_budget_bytes, size_t num_threads) {
  if (limits.batch_timeout_micros < 0 || limits.query_timeout_micros < 0) {
    return Status::InvalidArgument("batch timeouts must be >= 0");
  }
  BatchResult batch;
  batch.results.resize(queries.size());
  batch.statuses.assign(queries.size(), Status::OK());

  // Inflight budget: shared list cache + every live per-query arena.
  // Unlimited (accounting only) unless max_inflight_bytes is set. A fan-out
  // layer may parent it so one cap spans every sub-batch.
  MemoryBudget inflight(limits.max_inflight_bytes, limits.inflight_parent);
  ListCache cache;
  cache.budget = cache_budget_bytes;
  cache.inflight = &inflight;
  if (limits.shared_cache != nullptr && limits.shared_cache_owner != 0) {
    cache.shared = limits.shared_cache;
    cache.shared_owner = limits.shared_cache_owner;
  }

  const bool has_batch_deadline =
      limits.has_batch_deadline || limits.batch_timeout_micros > 0;
  const QueryContext::Clock::time_point batch_deadline =
      limits.has_batch_deadline
          ? limits.batch_deadline
          : QueryContext::Clock::now() +
                std::chrono::microseconds(limits.batch_timeout_micros);

  auto run_query = [&](size_t i) {
    // Admission control: past the batch deadline a queued query is shed
    // outright — running it could only steal time from nothing.
    if (has_batch_deadline &&
        QueryContext::Clock::now() >= batch_deadline) {
      batch.statuses[i] = Status::Cancelled("shed: batch deadline exceeded");
      return;
    }
    QueryContext ctx;
    if (limits.query_timeout_micros > 0) {
      ctx.set_deadline(QueryContext::Clock::now() +
                       std::chrono::microseconds(limits.query_timeout_micros));
    }
    if (has_batch_deadline &&
        limits.shed_policy == ShedPolicy::kCancelRunning &&
        (!ctx.has_deadline() || batch_deadline < ctx.deadline())) {
      // In-flight queries inherit the batch deadline: they stop at their
      // next checkpoint instead of finishing past it.
      ctx.set_deadline(batch_deadline);
    }
    MemoryBudget arena(limits.max_query_bytes, &inflight);
    ctx.set_memory_budget(&arena);
    batch.statuses[i] =
        SearchInternal(queries[i], options, &cache, &ctx, &batch.results[i]);
  };

  if (num_threads <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) run_query(i);
  } else {
    // Workers pull query indices from a shared counter, so a handful of
    // expensive queries cannot strand the rest of the batch on one thread.
    // Results land at their query's index; matches and spans are exactly
    // those of the sequential loop.
    std::atomic<size_t> next{0};
    const size_t workers = std::min(num_threads, queries.size());
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) return;
          run_query(i);
        }
      });
    }
    pool.WaitIdle();
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    const Status& status = batch.statuses[i];
    if (status.ok()) {
      ++batch.stats.queries_ok;
      if (batch.results[i].stats.degraded_funcs > 0) {
        ++batch.stats.queries_degraded;
      }
    } else if (status.IsDeadlineExceeded()) {
      ++batch.stats.queries_deadline_exceeded;
    } else if (status.IsCancelled()) {
      ++batch.stats.queries_shed;
    } else if (status.IsResourceExhausted()) {
      ++batch.stats.queries_resource_exhausted;
    } else {
      ++batch.stats.queries_failed;
    }
    batch.stats.peak_query_bytes = std::max(
        batch.stats.peak_query_bytes, batch.results[i].stats.peak_memory_bytes);
  }
  batch.stats.peak_inflight_bytes = inflight.peak();
  return batch;
}

Status Searcher::SearchInternal(std::span<const Token> query,
                                const SearchOptions& options, ListCache* cache,
                                const QueryContext* ctx,
                                SearchResult* result) {
  constexpr uint32_t kNoFunc = 0xffffffffu;
  Stopwatch wall;
  Status status;
  for (;;) {
    // A degraded retry starts over: stats of the aborted attempt would
    // double-count.
    *result = SearchResult();
    // Each attempt runs over an immutable snapshot: a function dropped by
    // a concurrent query mid-attempt does not change this attempt's view.
    const std::vector<InvertedListSource*> snapshot = SnapshotSources();
    uint32_t failed_func = kNoFunc;
    status =
        SearchOnce(query, options, cache, snapshot, ctx, &failed_func, result);
    if (status.ok() || failed_func == kNoFunc || !options.allow_degraded) {
      break;
    }
    // A list failed its checksum mid-query. Drop the whole function — its
    // file is corrupt — and answer with the survivors at rescaled β.
    DropFunc(failed_func, status);
  }
  result->stats.wall_seconds = wall.ElapsedSeconds();
  if (ctx != nullptr && ctx->memory_budget() != nullptr) {
    result->stats.peak_memory_bytes = ctx->memory_budget()->peak();
  }
  return status;
}

Status Searcher::SearchOnce(std::span<const Token> query,
                            const SearchOptions& options, ListCache* cache,
                            const std::vector<InvertedListSource*>& sources,
                            const QueryContext* ctx, uint32_t* failed_func,
                            SearchResult* result_out) {
  if (query.empty()) {
    return Status::InvalidArgument("query sequence is empty");
  }
  if (options.theta <= 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in (0, 1]");
  }
  const uint32_t k = meta_.k;
  const uint32_t dropped = static_cast<uint32_t>(
      std::count(sources.begin(), sources.end(), nullptr));
  if (dropped > 0 && !options.allow_degraded) {
    return Status::Corruption(
        std::to_string(dropped) +
        " of " + std::to_string(k) +
        " index files are corrupt or missing; set "
        "SearchOptions::allow_degraded to search with the survivors");
  }
  // Effective family size k' = k - dropped. The hash family's seeds are
  // chained, so the surviving functions compute exactly what an index built
  // with fewer functions would; β is rescaled to ⌈θk'⌉ accordingly.
  const uint32_t k_eff = k - dropped;
  if (k_eff == 0) {
    return Status::Corruption("every index file is corrupt or missing");
  }
  const uint32_t beta = std::min<uint32_t>(
      k_eff, static_cast<uint32_t>(std::ceil(options.theta * k_eff)));

  SearchResult& result = *result_out;
  result.stats.degraded_funcs = dropped;
  // Per-query IO accumulator, threaded through every list read: a global
  // bytes_read() delta would also count concurrent queries' reads.
  uint64_t io_bytes = 0;
  // Arena for the query's working set (decoded lists, candidate groups).
  // Scope-bound: released when this attempt returns, success or not.
  ScopedMemoryCharge arena(ctx);
  // Partial stats survive an early governance exit: whatever IO happened is
  // recorded no matter which return path is taken.
  struct IoBytesGuard {
    const uint64_t& bytes;
    SearchStats& stats;
    ~IoBytesGuard() { stats.io_bytes = bytes; }
  } io_guard{io_bytes, result.stats};

  Stopwatch cpu;
  const MinHashSketch sketch =
      ComputeSketch(scheme_, query.data(), query.size());
  result.stats.cpu_seconds += cpu.ElapsedSeconds();

  // Classify the k lists. Absent keys contribute nothing and count as
  // scanned-short (they cost no IO). Under prefix filtering at most
  // beta - 1 lists may be skipped, or the first-pass threshold would drop
  // to zero; if more exceed the length threshold, the shortest of them are
  // demoted to the scan set.
  struct ListRef {
    uint32_t func;
    const ListMeta* meta;
  };
  std::vector<ListRef> short_lists;
  std::vector<ListRef> long_lists;
  std::vector<const ListMeta*> metas(k, nullptr);
  for (uint32_t func = 0; func < k; ++func) {
    if (sources[func] == nullptr) continue;  // dropped (degraded)
    metas[func] = sources[func]->FindList(sketch.argmin_tokens[func]);
    if (metas[func] == nullptr) ++result.stats.empty_lists;
  }
  if (options.use_prefix_filter && options.use_cost_model) {
    // Cost-model selection of the deferred lists.
    std::vector<uint64_t> counts(k, 0);
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] != nullptr) counts[func] = metas[func]->count;
    }
    const std::vector<bool> deferred = SelectDeferredLists(
        counts, beta, static_cast<double>(sizeof(PostedWindow)),
        options.cost_model);
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] == nullptr) continue;
      if (deferred[func]) {
        long_lists.push_back({func, metas[func]});
      } else {
        short_lists.push_back({func, metas[func]});
      }
    }
  } else {
    for (uint32_t func = 0; func < k; ++func) {
      if (metas[func] == nullptr) continue;
      if (options.use_prefix_filter &&
          metas[func]->count > options.long_list_threshold) {
        long_lists.push_back({func, metas[func]});
      } else {
        short_lists.push_back({func, metas[func]});
      }
    }
  }
  if (long_lists.size() > beta - 1) {
    std::sort(long_lists.begin(), long_lists.end(),
              [](const ListRef& a, const ListRef& b) {
                return a.meta->count < b.meta->count;
              });
    // Demote the shortest overflowing lists in one splice (erasing the
    // front one element at a time is quadratic in the overflow).
    const size_t demote = long_lists.size() - (beta - 1);
    short_lists.insert(short_lists.end(), long_lists.begin(),
                       long_lists.begin() + demote);
    long_lists.erase(long_lists.begin(), long_lists.begin() + demote);
  }
  result.stats.short_lists = static_cast<uint32_t>(short_lists.size());
  result.stats.long_lists = static_cast<uint32_t>(long_lists.size());
  const uint32_t beta1 = beta - static_cast<uint32_t>(long_lists.size());
  // θ ∈ (0, 1] makes β = ⌈θk'⌉ >= 1, and the demotion above caps the long
  // set at β - 1, so β1 >= 1 too. The sweep kernels reject a zero threshold
  // outright (it would mean "every text matches"), so verify the invariant
  // here — once, where both thresholds are computed — instead of relying on
  // each CollisionCount call site.
  if (beta == 0 || beta1 == 0) {
    return Status::Internal(
        "computed a zero collision threshold (beta=" + std::to_string(beta) +
        ", beta1=" + std::to_string(beta1) + ", k_eff=" +
        std::to_string(k_eff) + ")");
  }
  // First governance checkpoint, after list classification: even a query
  // that arrives with an expired deadline reports which lists it would
  // have touched (the partial-stats contract).
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));

  // Pass 1: scan the short lists fully, through the batch cache if one is
  // active (each distinct list is read from disk at most once per batch).
  Stopwatch io;
  std::vector<PostedWindow> windows;
  for (const ListRef& ref : short_lists) {
    // Per-list checkpoint, plus the arena charge for the windows this list
    // appends below (exact: cached copy and direct read both append
    // `count` windows).
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    NDSS_RETURN_NOT_OK(
        arena.Charge(ref.meta->count * sizeof(PostedWindow)));
    if (cache != nullptr && cache->shared != nullptr) {
      // Cross-query cache first: one read serves every request that wants
      // this list, across batches, until the owning source is retired.
      CrossQueryListCache* shared = cache->shared;
      const CrossQueryListCache::Key skey{
          cache->shared_owner, ListCache::Key(ref.func, ref.meta->key)};
      std::shared_ptr<CrossQueryListCache::Entry> entry =
          shared->GetOrCreate(skey);
      bool loaded_here = false;
      std::call_once(entry->once, [&] {
        loaded_here = true;
        shared->RecordMiss();
        entry->windows.reserve(ref.meta->count);
        entry->status = ReadListRetrying(sources[ref.func], *ref.meta,
                                         &entry->windows, &io_bytes, ctx,
                                         options.read_retry);
        if (!entry->status.ok()) return;
        entry->bytes = entry->windows.size() * sizeof(PostedWindow) +
                       CrossQueryListCache::kEntryOverhead;
        entry->stored = true;
        // Retention is best-effort: a full budget serves this query (and
        // its waiters) from the loaded entry without keeping it.
        shared->Commit(skey, entry);
      });
      if (!entry->status.ok()) {
        // Failed loads never stay cached: drop the key (iff it still maps
        // to this entry) so a later query retries the read.
        shared->Abandon(skey, entry);
        if (IsGovernanceStatus(entry->status)) {
          if (loaded_here) {
            // This query's own limits aborted the load; that says nothing
            // about the list.
            return entry->status;
          }
          // Another query's limits poisoned the entry — fall through to
          // the batch cache / direct read.
        } else {
          // A bad list fails every query that touched the entry the same
          // way, so degraded retries agree on which function to drop.
          if (entry->status.IsCorruption()) *failed_func = ref.func;
          return entry->status;
        }
      } else if (entry->stored) {
        windows.insert(windows.end(), entry->windows.begin(),
                       entry->windows.end());
        if (!loaded_here) {
          // The hit belongs to the query that avoided the read; the
          // loader already counted the miss and its io_bytes.
          ++result.stats.shared_cache_hits;
          shared->RecordHit();
        }
        continue;
      }
    }
    if (cache != nullptr) {
      const uint64_t key = ListCache::Key(ref.func, ref.meta->key);
      std::shared_ptr<ListCache::Entry> entry = cache->GetOrCreate(key);
      bool loaded_here = false;
      std::call_once(entry->once, [&] {
        loaded_here = true;
        const uint64_t list_bytes = ref.meta->count * sizeof(PostedWindow);
        if (!cache->Reserve(list_bytes)) return;  // over budget: stays direct
        entry->windows.reserve(ref.meta->count);
        entry->status = ReadListRetrying(sources[ref.func], *ref.meta,
                                         &entry->windows, &io_bytes, ctx,
                                         options.read_retry);
        if (!entry->status.ok()) {
          cache->Unreserve(list_bytes);
          return;
        }
        entry->stored = true;
      });
      if (!entry->status.ok()) {
        if (IsGovernanceStatus(entry->status)) {
          if (loaded_here) {
            // This query's own limits aborted the load. Drop the entry so
            // a later query can retry the read.
            cache->Invalidate(key, entry);
            return entry->status;
          }
          // Another query's limits poisoned the entry; that says nothing
          // about the list — read it directly.
        } else {
          // The loader (this query or another) hit a bad list; every query
          // touching the entry fails the same way so degraded retries
          // agree on which function to drop.
          if (entry->status.IsCorruption()) *failed_func = ref.func;
          return entry->status;
        }
      } else if (entry->stored) {
        windows.insert(windows.end(), entry->windows.begin(),
                       entry->windows.end());
        if (!loaded_here) ++result.stats.cache_hits;
        continue;
      }
      // Over budget (or governance-poisoned by another query): fall
      // through to an uncached direct read.
    }
    Status read = ReadListRetrying(sources[ref.func], *ref.meta, &windows,
                                   &io_bytes, ctx, options.read_retry);
    if (!read.ok()) {
      if (read.IsCorruption()) *failed_func = ref.func;
      return read;
    }
  }
  result.stats.io_seconds += io.ElapsedSeconds();
  result.stats.windows_scanned += windows.size();

  cpu.Restart();
  // Grouping copies (at most) every pass-1 window into its text's group.
  NDSS_RETURN_NOT_OK(arena.Charge(windows.size() * sizeof(PostedWindow)));
  std::vector<TextGroup> groups;
  GroupByText(windows, &groups, beta1);
  std::vector<MatchRectangle> rects;
  std::vector<TextGroup> candidates;
  for (TextGroup& group : groups) {
    rects.clear();
    NDSS_RETURN_NOT_OK(CollisionCount(group.windows, beta1, &rects, ctx));
    if (rects.empty()) continue;
    if (long_lists.empty()) {
      // No second pass: these rectangles are final.
      for (const MatchRectangle& r : rects) {
        result.rectangles.push_back({group.text, r});
      }
    } else {
      candidates.push_back(std::move(group));
    }
  }
  result.stats.cpu_seconds += cpu.ElapsedSeconds();

  // Pass 2: candidates probe the long lists through zone maps, then rerun
  // CollisionCount with the full threshold beta.
  result.stats.candidate_texts = candidates.size();
  for (TextGroup& group : candidates) {
    // Per-candidate checkpoint (probes themselves re-check per segment).
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    io.Restart();
    for (const ListRef& ref : long_lists) {
      const size_t before = group.windows.size();
      Status read = ReadWindowsForTextRetrying(sources[ref.func], *ref.meta,
                                               group.text, &group.windows,
                                               &io_bytes, ctx,
                                               options.read_retry);
      if (!read.ok()) {
        if (read.IsCorruption()) *failed_func = ref.func;
        return read;
      }
      NDSS_RETURN_NOT_OK(arena.Charge((group.windows.size() - before) *
                                      sizeof(PostedWindow)));
    }
    result.stats.io_seconds += io.ElapsedSeconds();
    cpu.Restart();
    result.stats.windows_scanned += group.windows.size();
    rects.clear();
    NDSS_RETURN_NOT_OK(CollisionCount(group.windows, beta, &rects, ctx));
    for (const MatchRectangle& r : rects) {
      result.rectangles.push_back({group.text, r});
    }
    result.stats.cpu_seconds += cpu.ElapsedSeconds();
  }

  // Length clamp + merged disjoint spans (the paper's Remark).
  cpu.Restart();
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  if (options.merge_matches) {
    result.spans = MergeRectangles(result.rectangles, meta_.t, k_eff);
  }
  result.stats.cpu_seconds += cpu.ElapsedSeconds();
  return Status::OK();
}

}  // namespace ndss
