#include "query/collision_count.h"

#include "common/query_context.h"
#include "query/interval_scan.h"

namespace ndss {

namespace {

/// Accounted footprint of the groups one IntervalScan call emitted: the
/// member id arrays plus per-group bookkeeping. Charged after the scan —
/// detection lags one sweep, but the sweep itself checks the deadline, so
/// enforcement granularity stays one IntervalScan call.
uint64_t GroupBytes(const std::vector<IntervalGroup>& groups) {
  uint64_t bytes = 0;
  for (const IntervalGroup& group : groups) {
    bytes += group.members.size() * sizeof(uint32_t) + sizeof(IntervalGroup);
  }
  return bytes;
}

}  // namespace

Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx) {
  if (alpha == 0) alpha = 1;
  if (windows.size() < alpha) return Status::OK();

  // The left intervals plus the endpoint array their sweep builds. Released
  // when this call returns, like the vectors themselves.
  ScopedMemoryCharge scratch(ctx);
  NDSS_RETURN_NOT_OK(
      scratch.Charge(windows.size() * 3 * sizeof(Interval)));

  // Left intervals [l, c]; interval id = index into `windows`.
  std::vector<Interval> left;
  left.reserve(windows.size());
  for (uint32_t i = 0; i < windows.size(); ++i) {
    left.push_back({windows[i].l, windows[i].c, i});
  }
  std::vector<IntervalGroup> left_groups;
  NDSS_RETURN_NOT_OK(IntervalScan(left, alpha, &left_groups, ctx));
  NDSS_RETURN_NOT_OK(scratch.Charge(GroupBytes(left_groups)));

  std::vector<Interval> right;
  std::vector<IntervalGroup> right_groups;
  for (const IntervalGroup& group : left_groups) {
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    // Per-iteration scratch: the right intervals and the groups of their
    // sweep are reused next iteration, so their charge is scoped to this
    // one (summing iterations would overstate a peak that never exists).
    ScopedMemoryCharge iteration_scratch(ctx);
    NDSS_RETURN_NOT_OK(
        iteration_scratch.Charge(group.members.size() * 3 * sizeof(Interval)));
    right.clear();
    for (uint32_t id : group.members) {
      right.push_back({windows[id].c, windows[id].r, id});
    }
    right_groups.clear();
    NDSS_RETURN_NOT_OK(IntervalScan(right, alpha, &right_groups, ctx));
    NDSS_RETURN_NOT_OK(iteration_scratch.Charge(GroupBytes(right_groups)));
    for (const IntervalGroup& rg : right_groups) {
      out->push_back(MatchRectangle{
          group.overlap_begin, group.overlap_end, rg.overlap_begin,
          rg.overlap_end, static_cast<uint32_t>(rg.members.size())});
    }
  }
  return Status::OK();
}

}  // namespace ndss
