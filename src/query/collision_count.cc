#include "query/collision_count.h"

#include <algorithm>

#include "common/query_context.h"
#include "query/interval_scan.h"

namespace ndss {

namespace {

/// Accounted footprint of one sweep's delta-encoded output. Charged after
/// the sweep — detection lags one sweep, but the sweep itself checks the
/// deadline, so enforcement granularity stays one IntervalSweep call.
uint64_t SweepBytes(const SweepGroups& sweep) {
  return sweep.groups.size() * sizeof(SweepGroups::Group) +
         (sweep.adds.size() + sweep.removes.size()) * sizeof(uint32_t);
}

}  // namespace

void CoalesceMatchRectangles(std::vector<MatchRectangle>* rects,
                             size_t from) {
  std::vector<MatchRectangle>& v = *rects;
  if (v.size() - from < 2) return;
  // Compacts in place. `prev_slice` / `cur_slice` hold output indices of
  // the rectangles whose x range is (or absorbed) the previous / current
  // input slice; a new rectangle merges into at most one of the previous
  // slice's (their y segments are pairwise disjoint).
  std::vector<size_t> prev_slice;
  std::vector<size_t> cur_slice;
  uint64_t slice_x_begin = ~0ull;
  uint64_t slice_x_end = ~0ull;
  size_t write = from;
  for (size_t read = from; read < v.size(); ++read) {
    const MatchRectangle r = v[read];
    if (r.x_begin != slice_x_begin || r.x_end != slice_x_end) {
      prev_slice.swap(cur_slice);
      cur_slice.clear();
      slice_x_begin = r.x_begin;
      slice_x_end = r.x_end;
    }
    bool merged = false;
    for (size_t q : prev_slice) {
      MatchRectangle& p = v[q];
      if (static_cast<uint64_t>(p.x_end) + 1 == r.x_begin &&
          p.y_begin == r.y_begin && p.y_end == r.y_end &&
          p.collisions == r.collisions) {
        p.x_end = r.x_end;
        cur_slice.push_back(q);
        merged = true;
        break;
      }
    }
    if (!merged) {
      v[write] = r;
      cur_slice.push_back(write);
      ++write;
    }
  }
  v.resize(write);
}

Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx) {
  if (alpha == 0) {
    return Status::InvalidArgument(
        "CollisionCount: alpha must be >= 1 (was the collision threshold "
        "miscomputed upstream?)");
  }
  if (windows.size() < alpha) return Status::OK();
  const size_t base = out->size();

  // The left intervals plus the endpoint array their sweep builds. Released
  // when this call returns, like the vectors themselves.
  ScopedMemoryCharge scratch(ctx);
  NDSS_RETURN_NOT_OK(
      scratch.Charge(windows.size() * 3 * sizeof(Interval)));

  // Left intervals [l, c]; interval id = index into `windows`, which also
  // makes sweep instance indices and window indices interchangeable.
  std::vector<Interval> left;
  left.reserve(windows.size());
  for (uint32_t i = 0; i < windows.size(); ++i) {
    left.push_back({windows[i].l, windows[i].c, i});
  }
  SweepGroups left_sweep;
  NDSS_RETURN_NOT_OK(IntervalSweep(left, alpha, &left_sweep, ctx));
  NDSS_RETURN_NOT_OK(scratch.Charge(SweepBytes(left_sweep)));

  SweepReplay replay(windows.size());
  std::vector<Interval> right;
  SweepGroups right_sweep;
  for (size_t g = 0; g < left_sweep.groups.size(); ++g) {
    const SweepGroups::Group& group = left_sweep.groups[g];
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    replay.Apply(left_sweep, g);
    // Per-iteration scratch: the right intervals and the delta groups of
    // their sweep are reused next iteration, so their charge is scoped to
    // this one (summing iterations would overstate a peak that never
    // exists).
    ScopedMemoryCharge iteration_scratch(ctx);
    NDSS_RETURN_NOT_OK(
        iteration_scratch.Charge(group.count * 3 * sizeof(Interval)));
    right.clear();
    for (uint32_t instance : replay.active()) {
      right.push_back({windows[instance].c, windows[instance].r, instance});
    }
    NDSS_RETURN_NOT_OK(IntervalSweep(right, alpha, &right_sweep, ctx));
    NDSS_RETURN_NOT_OK(iteration_scratch.Charge(SweepBytes(right_sweep)));
    // The right sweep's group cardinalities are the collision counts; no
    // membership is materialized on either side.
    for (const SweepGroups::Group& rg : right_sweep.groups) {
      out->push_back(
          MatchRectangle{group.begin, group.end, rg.begin, rg.end, rg.count});
    }
  }
  CoalesceMatchRectangles(out, base);
  return Status::OK();
}

}  // namespace ndss
