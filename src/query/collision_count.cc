#include "query/collision_count.h"

#include "query/interval_scan.h"

namespace ndss {

void CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                    std::vector<MatchRectangle>* out) {
  if (alpha == 0) alpha = 1;
  if (windows.size() < alpha) return;

  // Left intervals [l, c]; interval id = index into `windows`.
  std::vector<Interval> left;
  left.reserve(windows.size());
  for (uint32_t i = 0; i < windows.size(); ++i) {
    left.push_back({windows[i].l, windows[i].c, i});
  }
  std::vector<IntervalGroup> left_groups;
  IntervalScan(left, alpha, &left_groups);

  std::vector<Interval> right;
  std::vector<IntervalGroup> right_groups;
  for (const IntervalGroup& group : left_groups) {
    right.clear();
    for (uint32_t id : group.members) {
      right.push_back({windows[id].c, windows[id].r, id});
    }
    right_groups.clear();
    IntervalScan(right, alpha, &right_groups);
    for (const IntervalGroup& rg : right_groups) {
      out->push_back(MatchRectangle{
          group.overlap_begin, group.overlap_end, rg.overlap_begin,
          rg.overlap_end, static_cast<uint32_t>(rg.members.size())});
    }
  }
}

}  // namespace ndss
