#ifndef NDSS_QUERY_INTERVAL_SCAN_H_
#define NDSS_QUERY_INTERVAL_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace ndss {

class QueryContext;

/// A closed integer interval [begin, end] tagged with the index of the
/// compact window it came from.
struct Interval {
  uint32_t begin;
  uint32_t end;
  uint32_t id;
};

/// One maximal group found by IntervalScan: the ids of all input intervals
/// that contain every point of [overlap_begin, overlap_end], where that
/// range is an elementary segment of the endpoint subdivision (so the
/// containing set is constant across it).
struct IntervalGroup {
  std::vector<uint32_t> members;
  uint32_t overlap_begin;
  uint32_t overlap_end;
};

/// Algorithm 5 (IntervalScan): sweeps the endpoints of `intervals` in order
/// and reports, for every elementary segment covered by at least `alpha`
/// intervals, the set of covering intervals together with the segment.
/// Each qualifying (subset, segment) pair is reported exactly once, and the
/// reported segments are pairwise disjoint (Lemma 1). O(m log m) for the
/// sort plus O(m) per reported group.
///
/// With a `ctx`, the sweep checks the deadline/cancellation every
/// QueryContext::kCheckIntervalWindows distinct coordinates and stops early
/// with the context's error (`out` may hold a prefix of the groups).
Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out,
                    const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_QUERY_INTERVAL_SCAN_H_
