#ifndef NDSS_QUERY_INTERVAL_SCAN_H_
#define NDSS_QUERY_INTERVAL_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace ndss {

class QueryContext;

/// A closed integer interval [begin, end] tagged with the index of the
/// compact window it came from.
struct Interval {
  uint32_t begin;
  uint32_t end;
  uint32_t id;
};

/// One maximal group found by IntervalScan: the ids of all input intervals
/// that contain every point of [overlap_begin, overlap_end], where that
/// range is an elementary segment of the endpoint subdivision (so the
/// containing set is constant across it). Member order is unspecified.
struct IntervalGroup {
  std::vector<uint32_t> members;
  uint32_t overlap_begin;
  uint32_t overlap_end;
};

/// Delta-encoded output of the sweep kernel (IntervalSweep). Group g's
/// member set is obtained from group g-1's by adding `adds` and removing
/// `removes` (group 0 starts from the empty set), where both arrays hold
/// *instance* indices into the input span — the id of instance i is
/// intervals[i].id, and duplicate ids are therefore tracked per occurrence.
/// An instance appears in at most one of the two slices of any group, so
/// the slices may be replayed in either order.
///
/// This representation is what makes overlapping groups cheap: a sweep over
/// m intervals emits O(m) delta entries in total, where materializing every
/// group's member list is O(m^2) for heavily overlapping (skewed) inputs.
/// `count` is the group's member count, so consumers that only need
/// cardinalities (CollisionCount's right sweeps) never replay at all.
struct SweepGroups {
  struct Group {
    uint32_t begin;        ///< first coordinate of the elementary segment
    uint32_t end;          ///< last coordinate (inclusive)
    uint32_t count;        ///< member count across the segment
    uint32_t adds_end;     ///< exclusive prefix offset into `adds`
    uint32_t removes_end;  ///< exclusive prefix offset into `removes`
  };
  std::vector<Group> groups;
  std::vector<uint32_t> adds;
  std::vector<uint32_t> removes;

  void Clear() {
    groups.clear();
    adds.clear();
    removes.clear();
  }

  /// The delta slices of group g (g-1's slice ends where g's begins).
  std::span<const uint32_t> AddsOf(size_t g) const {
    const uint32_t begin = g == 0 ? 0 : groups[g - 1].adds_end;
    return {adds.data() + begin, groups[g].adds_end - begin};
  }
  std::span<const uint32_t> RemovesOf(size_t g) const {
    const uint32_t begin = g == 0 ? 0 : groups[g - 1].removes_end;
    return {removes.data() + begin, groups[g].removes_end - begin};
  }
};

/// Replays SweepGroups deltas into a dense active-instance array with an
/// O(1) per-event position index (the same structure the sweep itself
/// uses). Call Apply(g) for g = 0, 1, ... in order; active() is then group
/// g's member instances, in unspecified order.
class SweepReplay {
 public:
  explicit SweepReplay(size_t num_instances) : pos_(num_instances, kAbsent) {}

  void Apply(const SweepGroups& sweep, size_t g) {
    for (uint32_t instance : sweep.AddsOf(g)) {
      pos_[instance] = static_cast<uint32_t>(active_.size());
      active_.push_back(instance);
    }
    for (uint32_t instance : sweep.RemovesOf(g)) {
      const uint32_t at = pos_[instance];
      const uint32_t last = active_.back();
      active_[at] = last;
      pos_[last] = at;
      active_.pop_back();
      pos_[instance] = kAbsent;
    }
  }

  std::span<const uint32_t> active() const { return active_; }

 private:
  static constexpr uint32_t kAbsent = 0xffffffffu;
  std::vector<uint32_t> active_;
  std::vector<uint32_t> pos_;
};

/// The Algorithm 5 sweep kernel: sweeps the endpoints of `intervals` in
/// coordinate order (radix sort — endpoints are sequence coordinates, far
/// below 2^64) and reports every elementary segment covered by at least
/// `alpha` intervals as a delta-encoded group. Adjacent segments whose
/// member id multisets are identical (possible when one interval's end and
/// another's start of the same id meet at a coordinate) are coalesced into
/// one group. Removals from the active set are O(1) via a per-instance
/// position index. `alpha` must be >= 1 (InvalidArgument otherwise).
///
/// Endpoint coordinates are widened internally, so intervals ending at
/// UINT32_MAX are handled exactly (no wraparound).
///
/// `out` is cleared first (delta offsets are relative to this call). With a
/// `ctx`, the sweep checks the deadline/cancellation every
/// QueryContext::kCheckIntervalWindows distinct coordinates and stops early
/// with the context's error (`out` may hold a prefix of the groups).
Status IntervalSweep(std::span<const Interval> intervals, uint32_t alpha,
                     SweepGroups* out, const QueryContext* ctx = nullptr);

/// Algorithm 5 (IntervalScan): IntervalSweep with every group's member ids
/// materialized (compatibility and property-test surface; the query path
/// consumes the delta form directly). Groups are emitted in segment order,
/// segments are pairwise disjoint, and each qualifying (subset, segment)
/// pair is reported exactly once, with adjacent equal-membership segments
/// coalesced. O(m log m)-equivalent radix sweep plus O(|members|) per
/// reported group.
Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out,
                    const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_QUERY_INTERVAL_SCAN_H_
