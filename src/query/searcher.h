#ifndef NDSS_QUERY_SEARCHER_H_
#define NDSS_QUERY_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "hash/hash_family.h"
#include "index/index_builder.h"
#include "index/index_meta.h"
#include "index/list_source.h"
#include "query/collision_count.h"
#include "query/cost_model.h"
#include "text/corpus.h"
#include "text/types.h"

namespace ndss {

class CrossQueryListCache;

/// Options for one near-duplicate search.
struct SearchOptions {
  /// Jaccard similarity threshold θ; a sequence qualifies when it shares at
  /// least ⌈kθ⌉ of the k min-hash values with the query (Definition 2).
  double theta = 0.8;

  /// Enables prefix filtering: some inverted lists are not scanned in pass
  /// 1; candidate texts probe them through zone maps instead (Section 3.5).
  bool use_prefix_filter = true;

  /// Lists with more than this many windows are "long". Use
  /// Searcher::ListCountPercentile to derive a value from the corpus's token
  /// frequency distribution (the paper's 5%–20% prefix-length experiments).
  uint64_t long_list_threshold = 4096;

  /// When prefix filtering is on, pick the deferred lists with the IO/CPU
  /// cost model (SelectDeferredLists) instead of the fixed
  /// `long_list_threshold`.
  bool use_cost_model = false;

  /// Calibration for the cost model (ignored unless use_cost_model).
  CostModelParams cost_model;

  /// Merge overlapping result sequences into disjoint spans per text (the
  /// paper's Remark in Section 3.5).
  bool merge_matches = true;

  /// Opt-in graceful degradation: when an inverted-index file fails its
  /// checksum (at open with SearcherOptions::allow_degraded, or during a
  /// query), drop that hash function and answer with k' = k - dropped and
  /// β rescaled to ⌈θk'⌉, instead of failing the query. Dropped functions
  /// are logged and surfaced in SearchStats::degraded_funcs. Results are
  /// exactly those of an index built with the surviving k' functions
  /// (min-hash seeds are chained, so function f is identical across k).
  bool allow_degraded = false;

  /// Retry policy for transient IOErrors on inverted-list reads. The
  /// default (a single attempt) preserves fail-fast behaviour; raising
  /// max_attempts makes list reads ride out flaky IO. Retries respect the
  /// query's deadline: the backoff sleep is clamped to the remaining time
  /// and retrying stops once the deadline passes.
  RetryPolicy read_retry{.max_attempts = 1};
};

/// Options for opening a Searcher.
struct SearcherOptions {
  /// When true, an index file that is missing or fails its checksum is
  /// dropped (with a warning) instead of failing Open; queries must then
  /// also pass SearchOptions::allow_degraded. At least one file must
  /// survive.
  bool allow_degraded = false;
};

/// A rectangle of matching sequences in a specific text (see
/// MatchRectangle).
struct TextMatchRectangle {
  TextId text;
  MatchRectangle rect;
};

/// A merged, disjoint match span: tokens [begin, end] of `text` contain at
/// least one sequence sharing >= ⌈kθ⌉ min-hashes with the query.
struct MatchSpan {
  TextId text;
  uint32_t begin;
  uint32_t end;
  /// Highest collision count among the rectangles merged into this span.
  uint32_t collisions;
  /// collisions / k — the estimated Jaccard similarity.
  double estimated_similarity;
};

/// Cost counters for one search; these feed the Figure 3 experiments.
struct SearchStats {
  uint64_t io_bytes = 0;          ///< bytes read from index files
  uint32_t short_lists = 0;       ///< lists scanned fully (pass 1)
  uint32_t long_lists = 0;        ///< lists handled by zone-map probes
  uint32_t empty_lists = 0;       ///< query min-hash keys absent from index
  uint32_t cache_hits = 0;        ///< pass-1 lists served from a batch cache
  uint32_t shared_cache_hits = 0; ///< pass-1 lists served from the
                                  ///< cross-query list cache (no IO)
  uint64_t windows_scanned = 0;   ///< windows fed to CollisionCount
  uint64_t candidate_texts = 0;   ///< texts surviving pass 1
  uint32_t degraded_funcs = 0;    ///< hash functions dropped for this query
                                  ///< (0 = full-fidelity answer)
  uint32_t degraded_shards = 0;   ///< shards excluded from this answer (only
                                  ///< ever non-zero for a ShardedSearcher)
  double io_seconds = 0;          ///< time in index reads
  double cpu_seconds = 0;         ///< time in grouping + CollisionCount
  double wall_seconds = 0;        ///< end-to-end latency of the query
  uint64_t peak_memory_bytes = 0; ///< high-water mark of the query's memory
                                  ///< budget (0 when no budget is attached)
};

/// Result of one near-duplicate search.
struct SearchResult {
  /// All qualifying rectangles (exact compact representation).
  std::vector<TextMatchRectangle> rectangles;
  /// Disjoint merged spans (filled when options.merge_matches).
  std::vector<MatchSpan> spans;
  SearchStats stats;
};

/// What SearchBatch does with queries it can no longer serve once the
/// batch deadline has passed.
enum class ShedPolicy {
  /// Queries not yet started are shed (rejected without running); queries
  /// already in flight run to completion under their own deadlines.
  kRejectNew,
  /// Additionally, in-flight queries inherit the batch deadline and stop at
  /// their next checkpoint with DeadlineExceeded.
  kCancelRunning,
};

/// Resource limits for one governed SearchBatch call. Zero disables the
/// corresponding limit; a default-constructed BatchLimits governs nothing.
struct BatchLimits {
  /// Aggregate wall-clock budget for the whole batch, measured from the
  /// SearchBatch call. Once exceeded, unstarted queries are shed (see
  /// `shed_policy` for in-flight ones).
  int64_t batch_timeout_micros = 0;

  /// Per-query wall-clock budget, measured from the moment the query is
  /// picked up by a worker (not from batch start: a queued query has not
  /// spent anything yet).
  int64_t query_timeout_micros = 0;

  /// Cap on one query's working memory (decoded lists, candidate groups,
  /// scan scratch). A query that would exceed it fails with
  /// ResourceExhausted; the rest of the batch is unaffected.
  uint64_t max_query_bytes = 0;

  /// Cap on batch-wide in-flight memory: the shared list cache plus every
  /// live query arena. Cache inserts beyond it fall back to direct reads;
  /// query charges beyond it fail that query with ResourceExhausted.
  uint64_t max_inflight_bytes = 0;

  ShedPolicy shed_policy = ShedPolicy::kCancelRunning;

  // ---- fan-out composition hooks ----
  // Set by a layer that splits one logical batch across several Searchers
  // (ShardedSearcher): every sub-batch must shed against the same clock and
  // count against one memory cap, which the relative/per-call fields above
  // cannot express. Plain callers leave them untouched.

  /// When true, `batch_deadline` is the absolute batch deadline and
  /// `batch_timeout_micros` is ignored.
  bool has_batch_deadline = false;
  QueryContext::Clock::time_point batch_deadline{};

  /// Optional parent of this batch's inflight budget (shared list cache +
  /// live query arenas), so one cross-searcher cap spans every sub-batch.
  /// Observed, not owned; must outlive the SearchBatch call.
  MemoryBudget* inflight_parent = nullptr;

  /// Optional cross-query list cache (see CrossQueryListCache): pass-1
  /// lists are looked up there first, under `shared_cache_owner` — the
  /// immutable-source id of the Searcher this batch runs against. Observed,
  /// not owned; must outlive the SearchBatch call. Requires a non-zero
  /// owner id (owner 0 means "no cache identity" and disables the lookup).
  CrossQueryListCache* shared_cache = nullptr;
  uint64_t shared_cache_owner = 0;
};

/// Batch-level governance counters. `queries_degraded` counts ok queries
/// answered with dropped functions, so it overlaps `queries_ok`; the other
/// outcome counters partition the batch:
/// ok + deadline_exceeded + shed + resource_exhausted + failed == size.
struct BatchStats {
  uint64_t queries_ok = 0;
  uint64_t queries_degraded = 0;
  uint64_t queries_deadline_exceeded = 0;
  uint64_t queries_shed = 0;  ///< rejected unstarted (status Cancelled)
  uint64_t queries_resource_exhausted = 0;
  uint64_t queries_failed = 0;  ///< any other error (IO, corruption, ...)
  uint64_t peak_query_bytes = 0;     ///< max per-query arena high-water mark
  uint64_t peak_inflight_bytes = 0;  ///< cache + arenas high-water mark
};

/// Result of one governed SearchBatch call. `results[i]` holds whatever
/// query i produced before `statuses[i]` (partial stats survive a deadline
/// or budget failure; a shed query's result is empty).
struct BatchResult {
  std::vector<SearchResult> results;
  std::vector<Status> statuses;
  BatchStats stats;
};

/// Near-duplicate sequence search over an index directory (Algorithm 3).
///
///   NDSS_ASSIGN_OR_RETURN(Searcher searcher, Searcher::Open(dir));
///   NDSS_ASSIGN_OR_RETURN(SearchResult result,
///                         searcher.Search(query_tokens, options));
///
/// The searcher keeps the k inverted-index directories in memory and reads
/// lists on demand through positional (pread-style) IO.
///
/// Thread-safety: once opened, Search and SearchBatch may be called from
/// any number of threads on one Searcher, and SearchBatch itself fans
/// queries out across an internal pool when `num_threads > 1`. Degraded-
/// mode function drops are coordinated under a mutex: each query runs over
/// an immutable snapshot of the currently healthy sources, and a dropped
/// source stays alive (but unused) for the Searcher's lifetime so in-flight
/// queries never race with its destruction. Moving a Searcher must not
/// overlap with any in-flight query.
class Searcher {
 public:
  /// Opens the index previously built into `dir`. Refuses a directory with
  /// no CURRENT commit marker (an interrupted build). With
  /// `options.allow_degraded`, checksum-failed index files are dropped
  /// instead of failing the open.
  static Result<Searcher> Open(const std::string& dir,
                               const SearcherOptions& options = {});

  /// Builds an ephemeral, fully in-memory index over `corpus` and returns a
  /// searcher on it — no files touched. For small or short-lived corpora
  /// (document-vs-document alignment, tests). Only k, t, seed, and the
  /// window method of `options` apply.
  static Result<Searcher> InMemory(const Corpus& corpus,
                                   const IndexBuildOptions& options);

  // Defined out of line: the destructor needs the complete DegradedState.
  Searcher(Searcher&&) noexcept;
  Searcher& operator=(Searcher&&) noexcept;
  ~Searcher();

  /// Finds all sequences of the indexed corpus sharing at least ⌈kθ⌉
  /// min-hash values with `query`. Output sequences are clamped to length
  /// >= t (the index's length threshold).
  Result<SearchResult> Search(std::span<const Token> query,
                              const SearchOptions& options);

  /// Governed variant: the query runs under `ctx` (deadline, cancellation,
  /// memory budget; nullptr = ungoverned, bit-identical to the overload
  /// above). Returns the outcome as a Status and writes into `*result`
  /// either the full answer (OK) or whatever was computed before the
  /// failure — on DeadlineExceeded / Cancelled / ResourceExhausted the
  /// partial SearchStats (lists classified, bytes read, windows scanned so
  /// far) survive for observability, which the Result-returning overload
  /// cannot express.
  Status Search(std::span<const Token> query, const SearchOptions& options,
                const QueryContext* ctx, SearchResult* result);

  /// Governed variant that additionally consults `shared_cache` for pass-1
  /// lists under `shared_cache_owner` — the immutable-source id naming this
  /// Searcher in the cache's keyspace (0 means "no cache identity" and
  /// disables the lookup, making this identical to the overload above).
  /// Matches and spans are bit-identical with or without the cache; only
  /// SearchStats IO attribution changes (a served list counts a
  /// shared_cache_hit instead of io_bytes).
  Status Search(std::span<const Token> query, const SearchOptions& options,
                const QueryContext* ctx, CrossQueryListCache* shared_cache,
                uint64_t shared_cache_owner, SearchResult* result);

  /// Runs many queries with a shared pass-1 list cache: Zipfian token
  /// skew makes nearby queries hit the same min-hash keys, so each
  /// distinct list is read from disk at most once per batch (the workload
  /// shape of the Section 5 evaluation, which issues one query per sliding
  /// window). With `num_threads > 1` the queries are partitioned across an
  /// internal thread pool; matches and spans are identical to the
  /// sequential run and returned in input order. Per-query SearchStats
  /// attribute each list read to the query that performed it (a cached
  /// list's bytes are charged to the loader; later users count a
  /// cache_hit), so aggregate batch cost is the element-wise sum of the
  /// per-query stats regardless of thread count or scheduling.
  ///
  /// On error the whole batch fails; with several failing queries the
  /// status of the lowest-index one is returned.
  Result<std::vector<SearchResult>> SearchBatch(
      const std::vector<std::vector<Token>>& queries,
      const SearchOptions& options,
      uint64_t cache_budget_bytes = 256ull << 20, size_t num_threads = 1);

  /// Governed batch: admission control and load shedding on top of the
  /// shared-cache batch above. Every query runs under its own QueryContext
  /// derived from `limits` (per-query deadline, per-query arena parented to
  /// a batch-wide inflight budget); once the batch deadline passes,
  /// unstarted queries are shed and — under ShedPolicy::kCancelRunning —
  /// in-flight ones stop at their next checkpoint, so total batch
  /// wall-clock stays within the deadline plus one checkpoint interval.
  ///
  /// Per-query outcomes land in `statuses` (the call itself only fails on
  /// invalid arguments); counters in `stats` classify them. With a
  /// default-constructed BatchLimits the results are identical to the
  /// ungoverned SearchBatch.
  Result<BatchResult> SearchBatch(
      const std::vector<std::vector<Token>>& queries,
      const SearchOptions& options, const BatchLimits& limits,
      uint64_t cache_budget_bytes = 256ull << 20, size_t num_threads = 1);

  /// Build-time parameters of the open index.
  const IndexMeta& meta() const { return meta_; }

  /// The smallest list-length threshold such that at most `fraction` of all
  /// windows live in lists above it — used to set
  /// SearchOptions::long_list_threshold from a target prefix length.
  uint64_t ListCountPercentile(double fraction) const;

  /// Total indexed windows across the live sources (the sum of every
  /// directory's list counts). The ingestion memtable sizes its spill
  /// budget from this (windows dominate an in-memory index's footprint).
  uint64_t TotalWindows() const;

  /// Number of hash functions currently dropped due to corruption.
  uint32_t degraded_funcs() const;

 private:
  struct ListCache;
  struct DegradedState;

  Searcher(IndexMeta meta, SketchScheme scheme,
           std::vector<std::unique_ptr<InvertedListSource>> sources);

  /// Raw pointers to the sources healthy right now (nullptr per dropped
  /// function). Pointees outlive every query: sources are never destroyed
  /// after Open, only flagged dropped.
  std::vector<InvertedListSource*> SnapshotSources() const;

  /// Flags `func` dropped (idempotent; logs on the first drop).
  void DropFunc(uint32_t func, const Status& cause);

  /// Full search (degraded retries included) writing into `*result`; on
  /// failure the partial stats computed so far are left in place.
  Status SearchInternal(std::span<const Token> query,
                        const SearchOptions& options, ListCache* cache,
                        const QueryContext* ctx, SearchResult* result);

  /// One search attempt over the `sources` snapshot. On a list checksum
  /// failure, reports the offending function via `failed_func` so
  /// SearchInternal can drop it and retry when degradation is allowed.
  Status SearchOnce(std::span<const Token> query, const SearchOptions& options,
                    ListCache* cache,
                    const std::vector<InvertedListSource*>& sources,
                    const QueryContext* ctx, uint32_t* failed_func,
                    SearchResult* result);

  IndexMeta meta_;
  SketchScheme scheme_;
  std::vector<std::unique_ptr<InvertedListSource>> sources_;
  /// Heap-allocated so Searcher stays movable (holds a mutex).
  std::unique_ptr<DegradedState> degraded_;
};

/// Merges all rectangles of `rectangles` (any text order) into disjoint
/// per-text spans, keeping only sequences of length >= t. Exposed for tests.
std::vector<MatchSpan> MergeRectangles(
    std::vector<TextMatchRectangle> rectangles, uint32_t t, uint32_t k);

}  // namespace ndss

#endif  // NDSS_QUERY_SEARCHER_H_
