#ifndef NDSS_QUERY_COST_MODEL_H_
#define NDSS_QUERY_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace ndss {

/// Calibration constants for the prefix-selection cost model. Defaults are
/// rough figures for a SATA-class disk and one modern core; the ablation
/// benchmark shows the selection is insensitive to small calibration error
/// because list lengths are Zipf-skewed (the longest lists dominate).
struct CostModelParams {
  /// Sequential-read cost per posting byte.
  double io_seconds_per_byte = 1.0e-9;

  /// CPU cost per window fed through grouping + CollisionCount.
  double cpu_seconds_per_window = 2.0e-8;

  /// Cost of one zone-map point lookup for one candidate text in one
  /// deferred list (seek + zone read + one segment decode).
  double probe_seconds = 5.0e-6;
};

/// Chooses which of the query's k inverted lists to defer to the second
/// pass (the paper's prefix filtering, Section 3.5, with the cutoff chosen
/// by a cost model in the spirit of the works it cites instead of a fixed
/// length threshold).
///
/// `list_counts[i]` is the window count of the i-th list (0 for an absent
/// key — those are never deferred). `bytes_per_window` converts counts to
/// IO bytes. At most `beta - 1` lists may be deferred (the first-pass
/// threshold must stay >= 1). Candidate count is bounded by
/// (windows scanned) / first-pass-threshold, which the model uses to price
/// second-pass probes.
///
/// Returns a parallel vector: true = defer this list.
std::vector<bool> SelectDeferredLists(const std::vector<uint64_t>& list_counts,
                                      uint32_t beta, double bytes_per_window,
                                      const CostModelParams& params);

}  // namespace ndss

#endif  // NDSS_QUERY_COST_MODEL_H_
