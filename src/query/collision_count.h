#ifndef NDSS_QUERY_COLLISION_COUNT_H_
#define NDSS_QUERY_COLLISION_COUNT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/posting.h"

namespace ndss {

class QueryContext;

/// A rectangle of matching sequences within one text: every sequence
/// T[i, j] with i in [x_begin, x_end] and j in [y_begin, y_end] lies in
/// exactly `collisions` compact windows of the group, i.e. shares
/// `collisions` min-hash values with the query. Rectangles produced for one
/// group are pairwise disjoint in (i, j) space.
struct MatchRectangle {
  uint32_t x_begin;
  uint32_t x_end;
  uint32_t y_begin;
  uint32_t y_end;
  uint32_t collisions;
};

/// Algorithm 4 (CollisionCount): given all compact windows of one text that
/// collide with the query (from up to k inverted lists) and the collision
/// threshold `alpha` = ⌈kθ⌉ (or the reduced first-pass threshold under
/// prefix filtering), finds every rectangle of sequences contained in at
/// least `alpha` windows. Splits each window (l, c, r) into a left interval
/// [l, c] and right interval [c, r] and runs IntervalScan on each side.
/// O(m^2 log m) for a group of m windows.
///
/// With a `ctx`, the deadline/cancellation is checked per left group (plus
/// inside each IntervalScan sweep) and the O(m^2) scan scratch — interval
/// arrays, endpoint arrays, and the groups the sweeps emit — is charged to
/// the memory budget, so a pathological group fails with ResourceExhausted
/// instead of growing without bound. `out` may hold a prefix of the
/// rectangles on early exit.
Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_QUERY_COLLISION_COUNT_H_
