#ifndef NDSS_QUERY_COLLISION_COUNT_H_
#define NDSS_QUERY_COLLISION_COUNT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/posting.h"

namespace ndss {

class QueryContext;

/// A rectangle of matching sequences within one text: every sequence
/// T[i, j] with i in [x_begin, x_end] and j in [y_begin, y_end] lies in
/// exactly `collisions` compact windows of the group, i.e. shares
/// `collisions` min-hash values with the query. Rectangles produced for one
/// group are pairwise disjoint in (i, j) space.
struct MatchRectangle {
  uint32_t x_begin;
  uint32_t x_end;
  uint32_t y_begin;
  uint32_t y_end;
  uint32_t collisions;

  friend bool operator==(const MatchRectangle& a, const MatchRectangle& b) {
    return a.x_begin == b.x_begin && a.x_end == b.x_end &&
           a.y_begin == b.y_begin && a.y_end == b.y_end &&
           a.collisions == b.collisions;
  }
};

/// Merges x-adjacent rectangles in `rects[from..)` that agree on the y
/// range and collision count — the fragments the two-sided sweep emits for
/// one logical overlap when the left subdivision splits at a coordinate
/// that does not change the qualifying right-side segments. The input must
/// be in CollisionCount emission order: runs of equal (x_begin, x_end)
/// slices with increasing, disjoint x ranges. Disjointness and the
/// exactly-`collisions` guarantee are preserved (a merge only joins
/// rectangles that each assert the same count over the same y range).
void CoalesceMatchRectangles(std::vector<MatchRectangle>* rects,
                             size_t from = 0);

/// Algorithm 4 (CollisionCount): given all compact windows of one text that
/// collide with the query (from up to k inverted lists) and the collision
/// threshold `alpha` = ⌈kθ⌉ (or the reduced first-pass threshold under
/// prefix filtering), finds every rectangle of sequences contained in at
/// least `alpha` windows. Splits each window (l, c, r) into a left interval
/// [l, c] and right interval [c, r] and runs the IntervalSweep kernel on
/// each side: the left sweep's delta-encoded groups are replayed
/// incrementally (no per-group member copies), and the right sweeps read
/// collision counts straight off the group cardinalities. `alpha` must be
/// >= 1 (InvalidArgument otherwise — a zero threshold means the caller
/// miscomputed beta, and coercing it would return wrong-but-plausible
/// results). O(m^2) worst case for a group of m windows, with small
/// constants.
///
/// With a `ctx`, the deadline/cancellation is checked per left group (plus
/// inside each sweep) and the scan scratch — interval arrays, endpoint
/// arrays, and the sweeps' delta groups — is charged to the memory budget,
/// so a pathological group fails with ResourceExhausted instead of growing
/// without bound. `out` may hold a prefix of the rectangles on early exit.
Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx = nullptr);

}  // namespace ndss

#endif  // NDSS_QUERY_COLLISION_COUNT_H_
