#include "query/verify.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ndss {

double BestWindowJaccard(std::span<const Token> tokens, uint32_t begin,
                         uint32_t end, std::span<const Token> query) {
  const std::unordered_set<Token> query_set(query.begin(), query.end());
  const uint32_t span_length = end - begin + 1;
  const uint32_t window =
      std::min<uint32_t>(span_length, static_cast<uint32_t>(query.size()));
  if (window == 0) return 0.0;

  // Sliding window with distinct-token counts.
  std::unordered_map<Token, uint32_t> counts;
  size_t distinct = 0;
  size_t intersection = 0;
  auto add = [&](Token token) {
    uint32_t& count = counts[token];
    if (count == 0) {
      ++distinct;
      if (query_set.count(token) != 0) ++intersection;
    }
    ++count;
  };
  auto remove = [&](Token token) {
    uint32_t& count = counts[token];
    if (--count == 0) {
      --distinct;
      if (query_set.count(token) != 0) --intersection;
    }
  };

  double best = 0.0;
  for (uint32_t i = begin; i <= end; ++i) {
    add(tokens[i]);
    if (i - begin + 1 > window) remove(tokens[i - window]);
    if (i - begin + 1 >= window) {
      const size_t union_size = distinct + query_set.size() - intersection;
      const double jaccard =
          union_size == 0
              ? 1.0
              : static_cast<double>(intersection) / union_size;
      best = std::max(best, jaccard);
    }
  }
  return best;
}

std::vector<VerifiedMatch> VerifySpans(const Corpus& corpus,
                                       std::span<const Token> query,
                                       const std::vector<MatchSpan>& spans,
                                       double theta) {
  std::vector<VerifiedMatch> verified;
  (void)VerifySpans(corpus, query, spans, theta, nullptr, &verified);
  return verified;
}

Status VerifySpans(const Corpus& corpus, std::span<const Token> query,
                   const std::vector<MatchSpan>& spans, double theta,
                   const QueryContext* ctx, std::vector<VerifiedMatch>* out) {
  for (const MatchSpan& span : spans) {
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    const std::span<const Token> tokens = corpus.text_by_id(span.text);
    const double exact =
        BestWindowJaccard(tokens, span.begin, span.end, query);
    if (exact >= theta) {
      out->push_back(VerifiedMatch{span, exact});
    }
  }
  return Status::OK();
}

}  // namespace ndss
