#ifndef NDSS_QUERY_VERIFY_H_
#define NDSS_QUERY_VERIFY_H_

#include <span>
#include <vector>

#include "query/searcher.h"
#include "text/corpus.h"

namespace ndss {

/// A match span annotated with its exact similarity to the query.
struct VerifiedMatch {
  MatchSpan span;
  /// The best exact distinct Jaccard similarity of any query-length window
  /// inside the span (the span itself when shorter than the query).
  double exact_jaccard;
};

/// Best exact distinct Jaccard between `query` and any window of
/// |query| tokens inside tokens[begin..end]; computed incrementally in
/// O(end - begin) hash operations.
double BestWindowJaccard(std::span<const Token> tokens, uint32_t begin,
                         uint32_t end, std::span<const Token> query);

/// Exact re-verification of merged search results (the optional second
/// stage after the min-hash approximate search): recomputes the true
/// similarity of every span against the corpus and drops spans below
/// `theta`. This removes the estimation error of Definition 2 at the cost
/// of corpus access.
std::vector<VerifiedMatch> VerifySpans(const Corpus& corpus,
                                       std::span<const Token> query,
                                       const std::vector<MatchSpan>& spans,
                                       double theta);

/// Governed VerifySpans: re-checks `ctx` between spans (each span costs one
/// sliding-window pass over its tokens) and returns the context's error
/// with the spans verified so far in `*out`. nullptr ctx = ungoverned.
Status VerifySpans(const Corpus& corpus, std::span<const Token> query,
                   const std::vector<MatchSpan>& spans, double theta,
                   const QueryContext* ctx, std::vector<VerifiedMatch>* out);

}  // namespace ndss

#endif  // NDSS_QUERY_VERIFY_H_
