#include "query/reference/reference_kernels.h"

#include <algorithm>

#include "common/coding.h"
#include "common/query_context.h"

namespace ndss {
namespace reference {

namespace {

/// A sweep event at `coord`. Coordinates are widened to 64 bits for the
/// same reason as in the optimized kernel: the end event of an interval
/// ending at UINT32_MAX lives at 2^32.
struct Endpoint {
  uint64_t coord;
  uint32_t instance;
  bool is_start;
};

bool SameMemberIds(std::vector<uint32_t> a, std::vector<uint32_t> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out, const QueryContext* ctx) {
  if (alpha == 0) {
    return Status::InvalidArgument(
        "IntervalScan: alpha must be >= 1 (was the collision threshold "
        "miscomputed upstream?)");
  }
  if (intervals.size() < alpha) return Status::OK();
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
  const size_t base = out->size();

  std::vector<Endpoint> endpoints;
  endpoints.reserve(intervals.size() * 2);
  for (uint32_t instance = 0; instance < intervals.size(); ++instance) {
    endpoints.push_back({intervals[instance].begin, instance, true});
    endpoints.push_back(
        {static_cast<uint64_t>(intervals[instance].end) + 1, instance, false});
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return a.coord < b.coord;
            });

  // The active set holds instance indices; removal is a linear scan — this
  // is the oracle, not the fast path.
  std::vector<uint32_t> active;
  size_t i = 0;
  while (i < endpoints.size()) {
    const uint64_t coord = endpoints[i].coord;
    while (i < endpoints.size() && endpoints[i].coord == coord) {
      const Endpoint& endpoint = endpoints[i];
      if (endpoint.is_start) {
        active.push_back(endpoint.instance);
      } else {
        active.erase(std::find(active.begin(), active.end(),
                               endpoint.instance));
      }
      ++i;
    }
    if (i == endpoints.size()) break;  // past the last interval end
    if (active.size() >= alpha) {
      NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
      IntervalGroup group;
      group.overlap_begin = static_cast<uint32_t>(coord);
      group.overlap_end = static_cast<uint32_t>(endpoints[i].coord - 1);
      group.members.reserve(active.size());
      for (uint32_t instance : active) {
        group.members.push_back(intervals[instance].id);
      }
      // Coalesce with the previous group when the segments abut and the
      // member id multisets are equal (the fast kernel's pending deltas
      // netting to zero).
      if (out->size() > base) {
        IntervalGroup& prev = out->back();
        if (static_cast<uint64_t>(prev.overlap_end) + 1 == coord &&
            SameMemberIds(prev.members, group.members)) {
          prev.overlap_end = group.overlap_end;
          continue;
        }
      }
      out->push_back(std::move(group));
    }
  }
  return Status::OK();
}

Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx) {
  if (alpha == 0) {
    return Status::InvalidArgument(
        "CollisionCount: alpha must be >= 1 (was the collision threshold "
        "miscomputed upstream?)");
  }
  if (windows.size() < alpha) return Status::OK();
  const size_t base = out->size();

  // Left intervals [l, c]; interval id = index into `windows`, so a group's
  // member ids index straight back into the window span.
  std::vector<Interval> left;
  left.reserve(windows.size());
  for (uint32_t i = 0; i < windows.size(); ++i) {
    left.push_back({windows[i].l, windows[i].c, i});
  }
  std::vector<IntervalGroup> left_groups;
  NDSS_RETURN_NOT_OK(reference::IntervalScan(left, alpha, &left_groups, ctx));

  std::vector<Interval> right;
  std::vector<IntervalGroup> right_groups;
  for (const IntervalGroup& group : left_groups) {
    NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    right.clear();
    for (uint32_t w : group.members) {
      right.push_back({windows[w].c, windows[w].r, w});
    }
    right_groups.clear();
    NDSS_RETURN_NOT_OK(reference::IntervalScan(right, alpha, &right_groups, ctx));
    for (const IntervalGroup& rg : right_groups) {
      out->push_back(MatchRectangle{
          group.overlap_begin, group.overlap_end, rg.overlap_begin,
          rg.overlap_end, static_cast<uint32_t>(rg.members.size())});
    }
  }
  CoalesceMatchRectangles(out, base);
  return Status::OK();
}

const char* DecodeWindowRun(const char* p, const char* limit,
                            uint64_t max_windows, PostedWindow* out,
                            uint64_t* decoded) {
  uint32_t prev_text = 0;
  uint64_t n = 0;
  while (n < max_windows && p < limit) {
    uint32_t text_field, l, c_delta, r_delta;
    p = GetVarint32(p, limit, &text_field);
    if (p != nullptr) p = GetVarint32(p, limit, &l);
    if (p != nullptr) p = GetVarint32(p, limit, &c_delta);
    if (p != nullptr) p = GetVarint32(p, limit, &r_delta);
    if (p == nullptr) return nullptr;
    // Window 0 of the run is a restart point (absolute text).
    const uint32_t text = n == 0 ? text_field : prev_text + text_field;
    prev_text = text;
    out[n++] = PostedWindow{text, l, l + c_delta, l + c_delta + r_delta};
  }
  *decoded = n;
  return p;
}

void SortWindows(std::vector<PostedWindow>* windows) {
  std::stable_sort(windows->begin(), windows->end(),
                   [](const PostedWindow& a, const PostedWindow& b) {
                     if (a.text != b.text) return a.text < b.text;
                     return a.l < b.l;
                   });
}

void SortByKey(std::vector<std::pair<uint64_t, uint32_t>>* items) {
  std::stable_sort(items->begin(), items->end(),
                   [](const std::pair<uint64_t, uint32_t>& a,
                      const std::pair<uint64_t, uint32_t>& b) {
                     return a.first < b.first;
                   });
}

}  // namespace reference
}  // namespace ndss
