#ifndef NDSS_QUERY_REFERENCE_REFERENCE_KERNELS_H_
#define NDSS_QUERY_REFERENCE_REFERENCE_KERNELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/posting.h"
#include "query/collision_count.h"
#include "query/interval_scan.h"

namespace ndss {

/// Reference ("oracle") implementations of the query hot-path kernels.
///
/// These are the pre-optimization implementations, kept deliberately
/// simple: comparison sorts, O(|active|) linear-scan removal, full member
/// copies per group, and one-byte-at-a-time bounds-checked varint decode.
/// They define the semantics the optimized kernels in src/query/ and
/// src/index/ must reproduce bit-for-bit (same groups/rectangles/spans/
/// windows), and they are what the property tests
/// (tests/interval_scan_property_test.cc) and the equivalence gate inside
/// bench_hot_path compare against. They are NOT on any query path — do not
/// optimize them; their value is being obviously correct.
namespace reference {

/// IntervalScan by sorted-endpoint sweep with linear-scan removal and a
/// full member copy per emitted group. Same contract as ndss::IntervalScan:
/// alpha == 0 is InvalidArgument, endpoint coordinates are widened so
/// intervals ending at UINT32_MAX do not wrap, and adjacent contiguous
/// groups with equal member id multisets are coalesced. Member order within
/// a group is unspecified (compare sorted).
Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out,
                    const QueryContext* ctx = nullptr);

/// CollisionCount via reference::IntervalScan on both sides, with the same
/// left/right interval split and the same rectangle coalescing as the
/// optimized kernel. Emission order matches ndss::CollisionCount exactly.
Status CollisionCount(std::span<const PostedWindow> windows, uint32_t alpha,
                      std::vector<MatchRectangle>* out,
                      const QueryContext* ctx = nullptr);

/// One-varint-at-a-time decode of a compressed posting run (window 0
/// carries an absolute text id, the rest delta-encode it). Same contract
/// as ndss::DecodeWindowRun in src/index/varint_block.h: decodes up to
/// `max_windows` windows into `out`, stops cleanly at `limit`, sets
/// `*decoded`, and returns the position after the last full window or
/// nullptr on a truncated/overlong varint.
const char* DecodeWindowRun(const char* p, const char* limit,
                            uint64_t max_windows, PostedWindow* out,
                            uint64_t* decoded);

/// The searcher's pass-1 window order — (text, l) — by std::stable_sort.
void SortWindows(std::vector<PostedWindow>* windows);

/// The span-merge order — (text, begin) — by std::stable_sort, applied to
/// (text, begin) pairs packed as uint64 keys alongside payload indices.
void SortByKey(std::vector<std::pair<uint64_t, uint32_t>>* items);

}  // namespace reference
}  // namespace ndss

#endif  // NDSS_QUERY_REFERENCE_REFERENCE_KERNELS_H_
