#include "query/interval_scan.h"

#include <algorithm>

#include "common/query_context.h"

namespace ndss {

Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out,
                    const QueryContext* ctx) {
  if (alpha == 0) alpha = 1;
  if (intervals.size() < alpha) return Status::OK();
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));

  // Endpoint (coordinate, is_start, interval id). An interval [x, y]
  // contributes a start at x and an end at y + 1 (it no longer covers y+1).
  struct Endpoint {
    uint32_t coord;
    bool is_start;
    uint32_t id;
  };
  std::vector<Endpoint> endpoints;
  endpoints.reserve(intervals.size() * 2);
  for (const Interval& interval : intervals) {
    endpoints.push_back({interval.begin, true, interval.id});
    endpoints.push_back({interval.end + 1, false, interval.id});
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return a.coord < b.coord;
            });

  // Sweep: at each distinct coordinate apply all starts/ends, then the
  // active set is constant on [coord, next_coord - 1].
  std::vector<uint32_t> active;
  active.reserve(intervals.size());
  size_t i = 0;
  uint64_t coords_swept = 0;
  while (i < endpoints.size()) {
    if ((++coords_swept & (QueryContext::kCheckIntervalWindows - 1)) == 0) {
      NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    }
    const uint32_t coord = endpoints[i].coord;
    while (i < endpoints.size() && endpoints[i].coord == coord) {
      const Endpoint& endpoint = endpoints[i];
      if (endpoint.is_start) {
        active.push_back(endpoint.id);
      } else {
        // Remove one occurrence of the id (swap-erase keeps O(1)).
        auto it = std::find(active.begin(), active.end(), endpoint.id);
        if (it != active.end()) {
          *it = active.back();
          active.pop_back();
        }
      }
      ++i;
    }
    if (i == endpoints.size()) break;  // past the last interval end
    if (active.size() >= alpha) {
      IntervalGroup group;
      group.members = active;
      group.overlap_begin = coord;
      group.overlap_end = endpoints[i].coord - 1;
      out->push_back(std::move(group));
    }
  }
  return Status::OK();
}

}  // namespace ndss
