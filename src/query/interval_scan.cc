#include "query/interval_scan.h"

#include <algorithm>

#include "common/query_context.h"
#include "query/radix_sort.h"

namespace ndss {

namespace {

/// One sweep event. `coord` is widened to 64 bits because an end event
/// lives at interval.end + 1, which overflows uint32_t for intervals
/// ending at UINT32_MAX (the overflow made such intervals sort before
/// every start and stick in the active set forever). `instance` is the
/// index of the interval in the input span, so duplicate ids remove the
/// right occurrence in O(1).
struct Endpoint {
  uint64_t coord;
  uint32_t instance;
  uint32_t is_start;
};

constexpr uint32_t kAbsent = 0xffffffffu;

/// Pending-delta membership of one instance since the last flushed group.
enum PendingState : uint8_t { kNone = 0, kPendingAdd = 1, kPendingRemove = 2 };

/// Sweep working set: the dense active array with O(1) indexed removal,
/// plus the adds/removes accumulated since the last flushed group. An
/// instance sits in at most one pending list; re-adding a
/// pending-removed instance (or removing a pending-added one) cancels in
/// O(1) instead of growing both lists.
struct SweepState {
  std::vector<uint32_t> active;
  std::vector<uint32_t> pos;           ///< instance -> index in active
  std::vector<uint8_t> pending_state;  ///< instance -> PendingState
  std::vector<uint32_t> pending_pos;   ///< instance -> index in its list
  std::vector<uint32_t> pending_adds;
  std::vector<uint32_t> pending_removes;
  // Scratch for the id-multiset comparison in the coalescing check.
  std::vector<uint32_t> add_ids;
  std::vector<uint32_t> remove_ids;

  explicit SweepState(size_t m)
      : pos(m, kAbsent), pending_state(m, kNone), pending_pos(m, 0) {
    active.reserve(m);
  }

  void DropFromList(std::vector<uint32_t>& list, uint32_t instance) {
    const uint32_t at = pending_pos[instance];
    const uint32_t last = list.back();
    list[at] = last;
    pending_pos[last] = at;
    list.pop_back();
    pending_state[instance] = kNone;
  }

  void Start(uint32_t instance) {
    pos[instance] = static_cast<uint32_t>(active.size());
    active.push_back(instance);
    if (pending_state[instance] == kPendingRemove) {
      DropFromList(pending_removes, instance);
    } else {
      pending_state[instance] = kPendingAdd;
      pending_pos[instance] = static_cast<uint32_t>(pending_adds.size());
      pending_adds.push_back(instance);
    }
  }

  void End(uint32_t instance) {
    // Every end event's start sorts strictly earlier (begin <= end <
    // end + 1), so the instance is always active here.
    const uint32_t at = pos[instance];
    const uint32_t last = active.back();
    active[at] = last;
    pos[last] = at;
    active.pop_back();
    pos[instance] = kAbsent;
    if (pending_state[instance] == kPendingAdd) {
      DropFromList(pending_adds, instance);
    } else {
      pending_state[instance] = kPendingRemove;
      pending_pos[instance] = static_cast<uint32_t>(pending_removes.size());
      pending_removes.push_back(instance);
    }
  }

  /// True when the pending deltas leave the member *id* multiset unchanged
  /// — the coalescing condition. Instance-disjoint swaps of equal ids
  /// (interval [a, x-1] of id 7 abutting [x, b] of id 7) net to zero here
  /// even though the instance sets differ.
  bool PendingNetsToZeroIds(std::span<const Interval> intervals) {
    if (pending_adds.size() != pending_removes.size()) return false;
    if (pending_adds.empty()) return true;
    add_ids.clear();
    remove_ids.clear();
    for (uint32_t instance : pending_adds) {
      add_ids.push_back(intervals[instance].id);
    }
    for (uint32_t instance : pending_removes) {
      remove_ids.push_back(intervals[instance].id);
    }
    std::sort(add_ids.begin(), add_ids.end());
    std::sort(remove_ids.begin(), remove_ids.end());
    return add_ids == remove_ids;
  }

  /// Moves the pending deltas into `out` as the slices of a new group and
  /// resets the pending tracking.
  void Flush(SweepGroups* out) {
    for (uint32_t instance : pending_adds) {
      out->adds.push_back(instance);
      pending_state[instance] = kNone;
    }
    for (uint32_t instance : pending_removes) {
      out->removes.push_back(instance);
      pending_state[instance] = kNone;
    }
    pending_adds.clear();
    pending_removes.clear();
  }
};

}  // namespace

Status IntervalSweep(std::span<const Interval> intervals, uint32_t alpha,
                     SweepGroups* out, const QueryContext* ctx) {
  if (alpha == 0) {
    return Status::InvalidArgument(
        "IntervalScan: alpha must be >= 1 (was the collision threshold "
        "miscomputed upstream?)");
  }
  out->Clear();
  if (intervals.size() < alpha) return Status::OK();
  NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));

  const size_t m = intervals.size();
  std::vector<Endpoint> endpoints;
  endpoints.reserve(m * 2);
  for (uint32_t instance = 0; instance < m; ++instance) {
    const Interval& interval = intervals[instance];
    endpoints.push_back({interval.begin, instance, 1});
    endpoints.push_back(
        {static_cast<uint64_t>(interval.end) + 1, instance, 0});
  }
  // Endpoint coordinates are sequence positions (<= 2^32), so the radix
  // sort runs 2-5 byte passes instead of an O(m log m) comparison sort.
  // Order within one coordinate does not matter: all events at a
  // coordinate apply before the segment starting there is inspected.
  {
    std::vector<Endpoint> scratch;
    RadixSortByKey(
        &endpoints, [](const Endpoint& e) { return e.coord; }, &scratch);
  }

  SweepState state(m);
  size_t i = 0;
  uint64_t coords_swept = 0;
  while (i < endpoints.size()) {
    if ((++coords_swept & (QueryContext::kCheckIntervalWindows - 1)) == 0) {
      NDSS_RETURN_NOT_OK(CheckQueryContext(ctx));
    }
    const uint64_t coord = endpoints[i].coord;
    while (i < endpoints.size() && endpoints[i].coord == coord) {
      const Endpoint& endpoint = endpoints[i];
      if (endpoint.is_start) {
        state.Start(endpoint.instance);
      } else {
        state.End(endpoint.instance);
      }
      ++i;
    }
    if (i == endpoints.size()) break;  // past the last interval end
    if (state.active.size() >= alpha) {
      const uint32_t begin = static_cast<uint32_t>(coord);
      const uint32_t end = static_cast<uint32_t>(endpoints[i].coord - 1);
      if (!out->groups.empty() &&
          static_cast<uint64_t>(out->groups.back().end) + 1 == coord &&
          state.PendingNetsToZeroIds(intervals)) {
        // Same member ids as the abutting previous segment: one logical
        // group; extend it. The pending instance-level deltas stay pending
        // so the next flushed group's slices remain exact.
        out->groups.back().end = end;
      } else {
        state.Flush(out);
        out->groups.push_back(
            {begin, end, static_cast<uint32_t>(state.active.size()),
             static_cast<uint32_t>(out->adds.size()),
             static_cast<uint32_t>(out->removes.size())});
      }
    }
  }
  return Status::OK();
}

Status IntervalScan(std::span<const Interval> intervals, uint32_t alpha,
                    std::vector<IntervalGroup>* out,
                    const QueryContext* ctx) {
  SweepGroups sweep;
  const Status status = IntervalSweep(intervals, alpha, &sweep, ctx);
  // On early (governance) exit the sweep holds a prefix of the groups;
  // materialize it so `out` keeps the documented prefix contract.
  SweepReplay replay(intervals.size());
  out->reserve(out->size() + sweep.groups.size());
  for (size_t g = 0; g < sweep.groups.size(); ++g) {
    replay.Apply(sweep, g);
    IntervalGroup group;
    group.overlap_begin = sweep.groups[g].begin;
    group.overlap_end = sweep.groups[g].end;
    group.members.reserve(replay.active().size());
    for (uint32_t instance : replay.active()) {
      group.members.push_back(intervals[instance].id);
    }
    out->push_back(std::move(group));
  }
  return status;
}

}  // namespace ndss
