#include "query/cost_model.h"

#include <algorithm>
#include <numeric>

namespace ndss {

std::vector<bool> SelectDeferredLists(const std::vector<uint64_t>& list_counts,
                                      uint32_t beta, double bytes_per_window,
                                      const CostModelParams& params) {
  const size_t k = list_counts.size();
  std::vector<bool> deferred(k, false);
  if (beta <= 1) return deferred;  // every list must stay in pass 1

  // Candidate lists to defer, longest first.
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return list_counts[a] > list_counts[b];
  });

  uint32_t num_deferred = 0;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (num_deferred + 1 > beta - 1) break;
    const uint64_t count = list_counts[order[pos]];
    if (count == 0) break;  // remaining lists are empty
    // Scanning this list costs IO for its bytes plus CPU for its windows.
    const double scan_cost =
        count * bytes_per_window * params.io_seconds_per_byte +
        count * params.cpu_seconds_per_window;
    // Deferring it costs one probe per candidate text per deferred list.
    // Pigeonhole bound on candidates: a text surviving pass 1 needs
    // >= beta1 collisions among the scanned lists, so it must hit at least
    // one scanned list outside the beta1 - 1 largest — candidates are
    // bounded by the windows in the scanned lists excluding those largest.
    const uint32_t beta1 = beta - (num_deferred + 1);
    uint64_t est_candidates = 0;
    // order[pos + 1 ...] are the scanned lists, still sorted descending;
    // skip the first beta1 - 1 of them.
    for (size_t rest = pos + 1 + (beta1 > 0 ? beta1 - 1 : 0);
         rest < order.size(); ++rest) {
      est_candidates += list_counts[order[rest]];
    }
    const double defer_cost =
        static_cast<double>(est_candidates) * params.probe_seconds;
    if (scan_cost <= defer_cost) break;  // shorter lists are cheaper still
    deferred[order[pos]] = true;
    ++num_deferred;
  }
  return deferred;
}

}  // namespace ndss
