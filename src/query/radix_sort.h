#ifndef NDSS_QUERY_RADIX_SORT_H_
#define NDSS_QUERY_RADIX_SORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ndss {

/// Stable LSD radix sort of `items` by a 64-bit key, used by the query hot
/// path for endpoint, window, and span ordering. Sort keys there are
/// coordinates bounded by sequence/text-id magnitudes, not 2^64, so most of
/// the eight byte digits never vary; a single histogram pass over all eight
/// digit positions detects the constant ones and only the varying digits
/// pay a distribution pass. Ties keep their input order (stable), which
/// makes the result deterministic where std::sort's is not.
///
/// `key(item)` must be pure (called multiple times per item). `scratch` is
/// ping-pong storage, resized as needed; pass a reused vector to amortize
/// the allocation across calls. Small inputs fall back to std::stable_sort,
/// which beats histogramming below a few hundred elements.
template <typename T, typename KeyFn>
void RadixSortByKey(std::vector<T>* items, KeyFn key,
                    std::vector<T>* scratch) {
  const size_t n = items->size();
  if (n <= 256) {
    std::stable_sort(items->begin(), items->end(),
                     [&key](const T& a, const T& b) { return key(a) < key(b); });
    return;
  }
  // One pass builds all eight digit histograms.
  size_t hist[8][256] = {};
  for (const T& item : *items) {
    const uint64_t k = key(item);
    for (int digit = 0; digit < 8; ++digit) {
      ++hist[digit][(k >> (8 * digit)) & 0xff];
    }
  }
  scratch->resize(n);
  T* src = items->data();
  T* dst = scratch->data();
  bool in_items = true;
  for (int digit = 0; digit < 8; ++digit) {
    size_t* counts = hist[digit];
    // A digit every key agrees on permutes nothing; skip its pass.
    bool varies = false;
    for (int bucket = 0; bucket < 256; ++bucket) {
      if (counts[bucket] == n) break;
      if (counts[bucket] != 0) {
        varies = true;
        break;
      }
    }
    if (!varies) continue;
    size_t offset = 0;
    for (int bucket = 0; bucket < 256; ++bucket) {
      const size_t count = counts[bucket];
      counts[bucket] = offset;
      offset += count;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[counts[(key(src[i]) >> (8 * digit)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    in_items = !in_items;
  }
  if (!in_items) items->swap(*scratch);
}

/// RadixSortByKey with call-local scratch, for callers without a reusable
/// buffer.
template <typename T, typename KeyFn>
void RadixSortByKey(std::vector<T>* items, KeyFn key) {
  std::vector<T> scratch;
  RadixSortByKey(items, key, &scratch);
}

}  // namespace ndss

#endif  // NDSS_QUERY_RADIX_SORT_H_
