#ifndef NDSS_QUERY_LIST_CACHE_H_
#define NDSS_QUERY_LIST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "index/posting.h"

namespace ndss {

/// Cross-query posting-list cache: a bounded, memory-budgeted LRU of fully
/// decoded pass-1 lists that outlives any single SearchBatch. The prefix
/// filter exploits Zipfian token skew, which equally makes posting-list
/// popularity skewed under steady traffic — so a server re-reads the same
/// hot lists on every request unless something remembers them between
/// batches.
///
/// Keys are (owner, list). The owner id names one immutable list source —
/// a sealed shard's Searcher, or one published delta snapshot — and is
/// never reused: topology changes that retire a source (DetachShard,
/// ReopenShard, ReplaceShards, a delta publish) retire its owner id with
/// it, and the replacement gets a fresh id. Staleness is therefore
/// impossible by construction — a query can only look up entries under the
/// owner ids of the topology snapshot it runs against — and EraseOwner is
/// garbage collection, not a correctness hook. Entries of sources that
/// survive a topology-epoch bump (sealed shards are immutable) stay valid
/// and keep the cache warm.
///
/// Each entry carries a std::once_flag, so across every concurrent request
/// a distinct list is read from disk at most once: one loader runs the
/// read while every waiter blocks on the flag, then all of them share the
/// immutable decoded windows. Retention is accounted against the cache's
/// byte budget (split across kShards independent LRU shards) and charged
/// to an optional parent MemoryBudget — in ndss_serve, the server-wide
/// budget — so cached lists show up in the same governance hierarchy as
/// inflight query memory. An entry that cannot be retained (budget full
/// even after eviction, or the parent refuses the charge) is dropped from
/// the map but stays readable by the queries already holding it; later
/// queries will re-read and retry retention.
///
/// Thread-safe. Readers of a loaded entry synchronize through call_once;
/// the per-shard mutex only guards map/LRU bookkeeping.
class CrossQueryListCache {
 public:
  struct Key {
    uint64_t owner = 0;  ///< immutable-source id (never reused)
    uint64_t list = 0;   ///< (func << 32) | min-hash token
    bool operator==(const Key& other) const {
      return owner == other.owner && list == other.list;
    }
  };

  struct Entry {
    std::once_flag once;
    std::vector<PostedWindow> windows;
    Status status = Status::OK();
    bool stored = false;   ///< windows are valid (read succeeded)
    uint64_t bytes = 0;    ///< accounted size, set by the loader
  };

  /// Monotonic counters plus a point-in-time usage snapshot.
  struct Counters {
    uint64_t hits = 0;          ///< lists served without a read
    uint64_t misses = 0;        ///< lists a query had to load
    uint64_t insertions = 0;    ///< entries retained
    uint64_t evictions = 0;     ///< entries LRU-evicted for space
    uint64_t invalidations = 0; ///< entries dropped by EraseOwner/Abandon
    uint64_t bytes_used = 0;
    uint64_t entries = 0;
  };

  /// `budget_bytes` caps retained entries (0 disables retention — every
  /// load is abandoned after serving its waiters). `parent` is optionally
  /// charged for every retained byte.
  explicit CrossQueryListCache(uint64_t budget_bytes,
                               MemoryBudget* parent = nullptr);
  ~CrossQueryListCache();

  CrossQueryListCache(const CrossQueryListCache&) = delete;
  CrossQueryListCache& operator=(const CrossQueryListCache&) = delete;

  /// Returns the entry for `key`, creating an empty one if absent, and
  /// touches the LRU. The caller runs the load under entry->once.
  std::shared_ptr<Entry> GetOrCreate(const Key& key);

  /// Retains a loaded entry: evicts LRU entries until entry->bytes fits the
  /// shard's budget share, charges the parent, and marks the entry
  /// resident. Returns false (and removes `key` from the map, so a later
  /// query retries) when it cannot fit; the entry's windows stay valid for
  /// current holders either way. Must be called by the loader, at most
  /// once, with entry->bytes set.
  bool Commit(const Key& key, const std::shared_ptr<Entry>& entry);

  /// Drops `key` iff it still maps to `entry`, so a later query can retry
  /// the load. Used when the loader failed (its own governance limits, a
  /// corrupt list): the entry must not linger un-retried.
  void Abandon(const Key& key, const std::shared_ptr<Entry>& entry);

  /// Drops every entry of `owner`, releasing its bytes. Called when a
  /// topology change retires the source behind that id.
  void EraseOwner(uint64_t owner);

  void RecordHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  Counters counters() const;
  uint64_t budget_bytes() const { return budget_bytes_; }

  /// Fixed per-entry accounting overhead (map node, LRU node, vector
  /// header), added to the window payload when sizing an entry.
  static constexpr uint64_t kEntryOverhead = 96;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = key.owner * 0x9e3779b97f4a7c15ull;
      h ^= key.list + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<Key>::iterator lru_it;
    bool resident = false;  ///< accounted and on the LRU list
  };

  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Slot, KeyHash> map;
    std::list<Key> lru;  ///< front = most recent, resident entries only
    uint64_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % kShards];
  }

  /// Removes a resident slot's accounting (bytes, LRU, parent charge).
  /// Caller holds the shard mutex.
  void RetireLocked(Shard& shard, Slot& slot);

  const uint64_t budget_bytes_;
  const uint64_t shard_budget_;  ///< budget_bytes_ / kShards
  MemoryBudget* const parent_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace ndss

#endif  // NDSS_QUERY_LIST_CACHE_H_
